//! # kgag-serve
//!
//! A concurrent scoring front-end over any
//! [`BatchGroupScorer`](kgag_eval::protocol::BatchGroupScorer): load a
//! model once, share it read-only across threads, and turn many small
//! independent `(group, candidates)` requests into the large fused
//! batches the inference engine is fast at.
//!
//! The core is an **adaptive micro-batcher** ([`batcher`]): requests
//! from any number of client threads land in one bounded queue; worker
//! threads drain it in chunks, waiting up to a configurable latency
//! budget ([`ServeConfig::batch_window`]) for more requests to fuse
//! before calling
//! [`score_batch`](kgag_eval::protocol::BatchGroupScorer::score_batch)
//! once per chunk.
//! Because the engine's batched scorer is bit-identical at *any*
//! chunking (the PR 4 oracle guarantee, re-enforced for serving by
//! `crates/bench/src/bin/serve_check.rs`), fusing arbitrary interleavings
//! of concurrent requests is value-neutral: every client receives
//! exactly the scores the offline evaluation path would have produced.
//!
//! Three layers, innermost first:
//!
//! * [`serve_in_process`] — spawn workers over a borrowed scorer, hand
//!   the caller a cloneable [`ServeHandle`], drain gracefully on exit.
//!   This is the API the CI bit-identity gate and the TCP layer build on.
//! * [`wire`] — a tiny length-prefixed binary protocol (little-endian,
//!   `u32` frame length) for request/response over a byte stream.
//! * [`serve_tcp`] / [`ServeClient`] — a loopback-first TCP server:
//!   one OS thread per connection feeding the shared batcher, shutdown
//!   via a [`ShutdownToken`].
//!
//! [`serve_tcp_dynamic`] layers **group lifecycle** on the same socket
//! (DESIGN.md §13): create/join/leave opcodes dispatched to a
//! [`GroupLifecycle`](kgag_data::GroupLifecycle) backend synchronously
//! on the connection thread — never through the batcher — so a
//! client's next score request always observes its own mutation.
//! Servers without a backend ([`serve_tcp`]) answer mutations with
//! [`ServeError::Unsupported`] on a still-usable connection.
//!
//! Delivery contract: every request accepted by [`ServeHandle::submit`]
//! receives **exactly one** response — a score vector, or a terminal
//! [`ServeError`] — even across shutdown. Backpressure is explicit:
//! submissions beyond [`ServeConfig::queue_capacity`] are rejected
//! immediately rather than queued unboundedly.
//!
//! Everything is std-only, in keeping with the workspace's hermetic
//! build policy (DESIGN.md §"Hermetic builds"); telemetry flows through
//! `kgag-obs` under the `serve.*` namespace (DESIGN.md §12).

pub mod batcher;
pub mod config;
pub mod registry;
pub mod server;
pub mod shard;
pub mod wire;

pub use batcher::{
    serve_in_process, serve_in_process_try, spawn_batcher, BatcherGuard, PendingResponse,
    ServeHandle,
};
pub use config::ServeConfig;
pub use registry::{serve_tcp_registry, Governor, ModelFactory, RegistryConfig, RegistryServer};
pub use server::{
    serve_tcp, serve_tcp_dynamic, serve_tcp_try, ClientError, LifecycleResult, RegistryResult,
    ServeClient, ShutdownToken,
};
pub use shard::{serve_shard, ShardConfig, ShardPool, ShardedScorer};

/// Terminal, per-request failure modes. Every accepted request resolves
/// to scores or to exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The queue was at capacity, or the server had stopped accepting
    /// (shutdown already triggered). The request was never enqueued.
    Rejected,
    /// The request sat in the queue past its deadline and was dropped
    /// unscored.
    DeadlineMissed,
    /// The server terminated before producing a response (worker
    /// panic). Accepted requests only see this on abnormal exit —
    /// graceful shutdown drains the queue instead.
    Canceled,
    /// The wire-level request could not be decoded, or a score request
    /// named an out-of-range item on a lifecycle-aware server.
    Invalid,
    /// A lifecycle opcode reached a server without a lifecycle backend
    /// (static [`serve_tcp`]; mutations need
    /// [`server::serve_tcp_dynamic`]).
    Unsupported,
    /// A well-formed lifecycle mutation the backend rejected (unknown
    /// group, duplicate member, …); the serving state is unchanged.
    Lifecycle(kgag_data::LifecycleError),
    /// A sharded deployment could not reach every embedding row or draw
    /// the request needs (peer down, timed out, or answering garbage).
    /// Only requests whose receptive field touches the failed shard see
    /// this; the rest of the batch is answered normally.
    Shard(kgag::ShardErrorKind),
    /// The tenant's admission quota is exhausted (token bucket empty on
    /// a registry server, DESIGN.md §16). The request was never
    /// enqueued; the client should back off.
    Quota,
    /// A `LOAD` could not produce a model from the named checkpoint
    /// (unreadable file, shape mismatch). The detail is logged
    /// server-side; the registry is unchanged.
    LoadFailed,
    /// A well-formed registry transition the state machine rejected
    /// (unknown tenant or model, unproven shadow, …); the registry is
    /// unchanged.
    Registry(kgag::RegistryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => f.write_str("rejected: queue full or server shut down"),
            ServeError::DeadlineMissed => f.write_str("deadline missed before scoring"),
            ServeError::Canceled => f.write_str("server terminated before responding"),
            ServeError::Invalid => f.write_str("malformed request"),
            ServeError::Unsupported => f.write_str("lifecycle ops unsupported by this server"),
            ServeError::Lifecycle(e) => write!(f, "lifecycle rejected: {e}"),
            ServeError::Shard(kind) => {
                let what = match kind {
                    kgag::ShardErrorKind::Unavailable => "a shard is unavailable",
                    kgag::ShardErrorKind::Timeout => "a shard timed out",
                    kgag::ShardErrorKind::Protocol => "a shard answered garbage",
                };
                write!(f, "sharded scoring failed: {what}")
            }
            ServeError::Quota => f.write_str("tenant admission quota exhausted"),
            ServeError::LoadFailed => f.write_str("checkpoint load failed"),
            ServeError::Registry(e) => write!(f, "registry rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What a request resolves to: scores aligned with the submitted items,
/// or a terminal error.
pub type ServeResult = Result<Vec<f32>, ServeError>;

/// A batch scorer whose cases can fail *individually* — the seam the
/// batcher actually drains. Infallible scorers (anything implementing
/// [`kgag_eval::protocol::BatchGroupScorer`]) are adapted automatically
/// by the non-`_try` entry points, which wrap every row in `Ok`; the
/// sharded [`ShardedScorer`] implements this directly, mapping per-case
/// [`kgag::ShardError`]s to [`ServeError::Shard`] so one dead peer
/// fails only the requests that needed it, never the whole batch.
pub trait TryBatchGroupScorer: Sync {
    /// One result per case, aligned with `cases`; `Ok` rows are aligned
    /// with that case's items.
    fn try_score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<ServeResult>;
}

/// Adapter giving every infallible [`BatchGroupScorer`] the fallible
/// interface. The non-`_try` entry points wrap in this internally;
/// it is public so test harnesses (e.g. [`FaultScorer`] over a plain
/// [`BatchGroupScorer`]) can compose the same adaptation explicitly.
///
/// [`BatchGroupScorer`]: kgag_eval::protocol::BatchGroupScorer
pub struct InfallibleScorer<'a, S: ?Sized>(pub &'a S);

impl<S: kgag_eval::protocol::BatchGroupScorer + Sync + ?Sized> TryBatchGroupScorer
    for InfallibleScorer<'_, S>
{
    fn try_score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<ServeResult> {
        self.0.score_batch(cases).into_iter().map(Ok).collect()
    }
}

/// A [`TryBatchGroupScorer`] that misbehaves on a scripted schedule —
/// the interpreter for [`kgag_testkit::FaultPlan`] (which owns the
/// schedule; this wrapper owns the scorer it wraps). One scoring call
/// draws one [`FaultAction`](kgag_testkit::FaultAction):
///
/// * `Pass` — delegate untouched;
/// * `Panic` — panic mid-batch (the batcher must survive and answer);
/// * `Delay(d)` — sleep, then delegate (drives queued requests past
///   their deadlines);
/// * `Error` — fail every case with [`ServeError::Shard`] /
///   `Unavailable`, the typed dependency-outage shape;
/// * `Corrupt` — delegate, then flip the low mantissa bit of the first
///   score (the minimal bit-identity violation, for circuit-breaker
///   tests).
///
/// The property suites in `crates/serve/tests/fault_props.rs` wrap the
/// batcher's scorer in this and prove the exactly-once delivery
/// contract under every action.
pub struct FaultScorer<S> {
    inner: S,
    plan: kgag_testkit::FaultPlan,
}

impl<S> FaultScorer<S> {
    /// Wrap `inner`, misbehaving per `plan`.
    pub fn new(inner: S, plan: kgag_testkit::FaultPlan) -> Self {
        FaultScorer { inner, plan }
    }

    /// The schedule (for asserting on calls drawn / faults injected).
    pub fn plan(&self) -> &kgag_testkit::FaultPlan {
        &self.plan
    }
}

impl<S: TryBatchGroupScorer> TryBatchGroupScorer for FaultScorer<S> {
    fn try_score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<ServeResult> {
        use kgag_testkit::FaultAction;
        match self.plan.next_action() {
            FaultAction::Pass => self.inner.try_score_batch(cases),
            FaultAction::Panic => panic!("injected fault: scorer panic"),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                self.inner.try_score_batch(cases)
            }
            FaultAction::Error => cases
                .iter()
                .map(|_| Err(ServeError::Shard(kgag::ShardErrorKind::Unavailable)))
                .collect(),
            FaultAction::Corrupt => {
                let mut out = self.inner.try_score_batch(cases);
                if let Some(s) = out.iter_mut().filter_map(|r| r.as_mut().ok()).flatten().next() {
                    *s = f32::from_bits(s.to_bits() ^ 1);
                }
                out
            }
        }
    }
}
