//! # kgag-serve
//!
//! A concurrent scoring front-end over any
//! [`BatchGroupScorer`](kgag_eval::protocol::BatchGroupScorer): load a
//! model once, share it read-only across threads, and turn many small
//! independent `(group, candidates)` requests into the large fused
//! batches the inference engine is fast at.
//!
//! The core is an **adaptive micro-batcher** ([`batcher`]): requests
//! from any number of client threads land in one bounded queue; worker
//! threads drain it in chunks, waiting up to a configurable latency
//! budget ([`ServeConfig::batch_window`]) for more requests to fuse
//! before calling
//! [`score_batch`](kgag_eval::protocol::BatchGroupScorer::score_batch)
//! once per chunk.
//! Because the engine's batched scorer is bit-identical at *any*
//! chunking (the PR 4 oracle guarantee, re-enforced for serving by
//! `crates/bench/src/bin/serve_check.rs`), fusing arbitrary interleavings
//! of concurrent requests is value-neutral: every client receives
//! exactly the scores the offline evaluation path would have produced.
//!
//! Three layers, innermost first:
//!
//! * [`serve_in_process`] — spawn workers over a borrowed scorer, hand
//!   the caller a cloneable [`ServeHandle`], drain gracefully on exit.
//!   This is the API the CI bit-identity gate and the TCP layer build on.
//! * [`wire`] — a tiny length-prefixed binary protocol (little-endian,
//!   `u32` frame length) for request/response over a byte stream.
//! * [`serve_tcp`] / [`ServeClient`] — a loopback-first TCP server:
//!   one OS thread per connection feeding the shared batcher, shutdown
//!   via a [`ShutdownToken`].
//!
//! Delivery contract: every request accepted by [`ServeHandle::submit`]
//! receives **exactly one** response — a score vector, or a terminal
//! [`ServeError`] — even across shutdown. Backpressure is explicit:
//! submissions beyond [`ServeConfig::queue_capacity`] are rejected
//! immediately rather than queued unboundedly.
//!
//! Everything is std-only, in keeping with the workspace's hermetic
//! build policy (DESIGN.md §"Hermetic builds"); telemetry flows through
//! `kgag-obs` under the `serve.*` namespace (DESIGN.md §12).

pub mod batcher;
pub mod config;
pub mod server;
pub mod wire;

pub use batcher::{serve_in_process, PendingResponse, ServeHandle};
pub use config::ServeConfig;
pub use server::{serve_tcp, ServeClient, ShutdownToken};

/// Terminal, per-request failure modes. Every accepted request resolves
/// to scores or to exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The queue was at capacity, or the server had stopped accepting
    /// (shutdown already triggered). The request was never enqueued.
    Rejected,
    /// The request sat in the queue past its deadline and was dropped
    /// unscored.
    DeadlineMissed,
    /// The server terminated before producing a response (worker
    /// panic). Accepted requests only see this on abnormal exit —
    /// graceful shutdown drains the queue instead.
    Canceled,
    /// The wire-level request could not be decoded.
    Invalid,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeError::Rejected => "rejected: queue full or server shut down",
            ServeError::DeadlineMissed => "deadline missed before scoring",
            ServeError::Canceled => "server terminated before responding",
            ServeError::Invalid => "malformed request",
        })
    }
}

impl std::error::Error for ServeError {}

/// What a request resolves to: scores aligned with the submitted items,
/// or a terminal error.
pub type ServeResult = Result<Vec<f32>, ServeError>;
