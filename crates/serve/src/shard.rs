//! Sharded scatter-gather serving (DESIGN.md §15).
//!
//! A sharded deployment splits the embedding tables and the knowledge
//! graph's adjacency rows across `N` shard processes (contiguous row
//! ranges, [`kgag_kg::Partition`]); a router process holds only the
//! small dense parameters ([`kgag::RouterCore`]) and assembles each
//! request's receptive field by querying shards for keyed neighbour
//! draws and raw embedding rows, then runs the *same* fused kernels a
//! single-node server would. Because draws are keyed on
//! `(seed, salt, entity, level)` and entity-local, and because score
//! fusion happens entirely on the router in the canonical tape
//! reduction order, sharded scores are **bit-identical** to single-node
//! scores on the f64 tier and self-identical across shard counts on the
//! f32 tier — enforced by `crates/bench/src/bin/shard_check.rs` in CI.
//!
//! Wire protocol: the same little-endian `u32` length-prefixed framing
//! as [`crate::wire`], with shard-only opcodes on dedicated
//! router↔shard connections (never mixed with client traffic):
//!
//! * [`OP_SHARD_INFO`] — handshake. Empty body; the reply carries
//!   `[index u32, count u32, dim u32, k u32, entities u64,
//!   relations u64]` and the router refuses to start on any mismatch
//!   with its own model card.
//! * [`OP_SHARD_DRAWS`] — body `[salt u64, level u32, n u32, n×id u32]`
//!   (every id owned by the shard); the reply carries `n*k` child
//!   entity ids then `n*k` relation ids, query-major.
//! * [`OP_SHARD_ROWS`] — body `[table u8, n u32, n×id u32]` with table
//!   `0` = entity, `1` = relation; the reply carries `n*dim` raw
//!   (unscaled) `f32` row values in query order.
//!
//! Every shard reply starts with a status byte: `0` = ok, anything else
//! = a refusal whose body is a human-readable reason. Refusals mean a
//! mis-routed or malformed request (wrong shard, unknown opcode,
//! truncated body) — the connection stays usable.
//!
//! Failure semantics: [`ShardPool`] gives each peer one worker thread
//! that owns the connection and drains a bounded job queue
//! ([`ShardConfig::queue`], blocking submitters when full — explicit
//! backpressure, never unbounded buffering). A transport failure or a
//! reply timeout ([`ShardConfig::timeout`]) marks the peer dead —
//! request/reply framing cannot be resynchronised after a partial read
//! — and every queued and future job on that peer fails fast with a
//! typed [`kgag::ShardError`]. The router maps those to
//! [`ServeError::Shard`] **per request**: only requests whose receptive
//! field touches the dead shard fail; the rest of the batch is answered
//! normally, and nothing panics or hangs.

use crate::config::parse_or;
use crate::server::{ShutdownToken, ACCEPT_POLL, READ_POLL};
use crate::wire::{self, MAX_FRAME};
use crate::{ServeError, ServeResult, TryBatchGroupScorer};
use kgag::{RouterCore, ShardError, ShardErrorKind, ShardFetch};
use kgag_kg::{Partition, ShardState};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Shard handshake: reply describes the shard's slice and model card.
pub const OP_SHARD_INFO: u8 = 16;
/// Keyed neighbour draws for owned entities at one RF level.
pub const OP_SHARD_DRAWS: u8 = 17;
/// Raw embedding-row gather from one table.
pub const OP_SHARD_ROWS: u8 = 18;

/// `table` operand of [`OP_SHARD_ROWS`]: the entity embedding table.
pub const TABLE_ENTITY: u8 = 0;
/// `table` operand of [`OP_SHARD_ROWS`]: the relation embedding table.
pub const TABLE_RELATION: u8 = 1;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Router-side knobs for talking to shard peers.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Per-reply deadline on each shard connection. A peer that blows
    /// it is marked dead (the stream cannot be resynchronised) and
    /// surfaces [`kgag::ShardErrorKind::Timeout`] on affected requests.
    pub timeout: Duration,
    /// Bounded per-peer job queue depth. Submitters block when it is
    /// full — backpressure propagates to the batcher instead of
    /// buffering unboundedly.
    pub queue: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { timeout: Duration::from_millis(2000), queue: 64 }
    }
}

impl ShardConfig {
    /// Read the config from the environment, falling back to defaults:
    /// `KGAG_SHARD_TIMEOUT_MS`, `KGAG_SHARD_QUEUE`. Unparseable values
    /// are ignored; both are clamped to at least 1.
    pub fn from_env() -> Self {
        let d = ShardConfig::default();
        ShardConfig {
            timeout: Duration::from_millis(parse_or(
                std::env::var("KGAG_SHARD_TIMEOUT_MS").ok().as_deref(),
                d.timeout.as_millis() as u64,
                1,
            )),
            queue: parse_or(std::env::var("KGAG_SHARD_QUEUE").ok().as_deref(), d.queue as u64, 1)
                as usize,
        }
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// A decoded shard-side request.
#[derive(Debug, PartialEq, Eq)]
enum ShardRequest {
    Info,
    Draws { salt: u64, level: u32, ids: Vec<u32> },
    Rows { table: u8, ids: Vec<u32> },
}

fn encode_info() -> Vec<u8> {
    vec![OP_SHARD_INFO]
}

fn encode_draws(salt: u64, level: u32, ids: &[u32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + 8 + 4 + 4 + ids.len() * 4);
    p.push(OP_SHARD_DRAWS);
    p.extend_from_slice(&salt.to_le_bytes());
    p.extend_from_slice(&level.to_le_bytes());
    p.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        p.extend_from_slice(&id.to_le_bytes());
    }
    p
}

fn encode_rows(table: u8, ids: &[u32]) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + 1 + 4 + ids.len() * 4);
    p.push(OP_SHARD_ROWS);
    p.push(table);
    p.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for &id in ids {
        p.extend_from_slice(&id.to_le_bytes());
    }
    p
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!("truncated shard request at byte {}", self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn ids(&mut self) -> Result<Vec<u32>, String> {
        let n = self.u32()? as usize;
        // the length prefix must be consistent with the bytes actually
        // present — a lying count is a framing error, not a short read
        if self.buf.len() - self.pos < n * 4 {
            return Err(format!("id list claims {n} ids but body is short"));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(self.u32()?);
        }
        Ok(ids)
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after shard request",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn decode_shard_request(payload: &[u8]) -> Result<ShardRequest, String> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let op = c.u8().map_err(|_| "empty shard request".to_owned())?;
    let req = match op {
        OP_SHARD_INFO => ShardRequest::Info,
        OP_SHARD_DRAWS => {
            let salt = c.u64()?;
            let level = c.u32()?;
            let ids = c.ids()?;
            ShardRequest::Draws { salt, level, ids }
        }
        OP_SHARD_ROWS => {
            let table = c.u8()?;
            if table != TABLE_ENTITY && table != TABLE_RELATION {
                return Err(format!("unknown row table {table}"));
            }
            let ids = c.ids()?;
            ShardRequest::Rows { table, ids }
        }
        other => return Err(format!("unknown shard opcode {other}")),
    };
    c.finish()?;
    Ok(req)
}

/// Split a shard reply into its ok-body, or the refusal reason.
fn parse_reply(payload: &[u8]) -> Result<Vec<u8>, String> {
    match payload.split_first() {
        Some((&STATUS_OK, body)) => Ok(body.to_vec()),
        Some((_, body)) => Err(String::from_utf8_lossy(body).into_owned()),
        None => Err("empty shard reply".to_owned()),
    }
}

fn ok_reply(body: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + body.len());
    p.push(STATUS_OK);
    p.extend_from_slice(body);
    p
}

fn err_reply(msg: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + msg.len());
    p.push(STATUS_ERR);
    p.extend_from_slice(msg.as_bytes());
    p
}

/// Length-prefix `payload` into one frame; `None` when it exceeds
/// [`MAX_FRAME`] (the caller degrades to an error reply, which always
/// fits).
fn into_frame(payload: &[u8]) -> Option<Vec<u8>> {
    if payload.len() > MAX_FRAME {
        return None;
    }
    let mut f = Vec::with_capacity(4 + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(payload);
    Some(f)
}

// ---------------------------------------------------------------------------
// Shard server
// ---------------------------------------------------------------------------

/// Serve one shard's slice over TCP until `token` is triggered.
///
/// Mirrors [`crate::serve_tcp`]'s accept loop: binds `addr` (use
/// `127.0.0.1:0` for an ephemeral port), reports the bound address
/// through `on_ready`, then accepts router connections on the calling
/// thread — one handler thread per connection, requests answered
/// synchronously in order. Shards are stateless request/reply servers;
/// all batching, caching and fusion lives on the router.
pub fn serve_shard(
    state: &ShardState,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    on_ready(local);
    std::thread::scope(|s| {
        while !token.is_triggered() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let token = token.clone();
                    s.spawn(move || shard_connection(stream, state, token));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) => {
                    eprintln!("[kgag-serve] shard accept error: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    });
    Ok(())
}

/// Per-connection loop: identical framing discipline to the scoring
/// server — partial frames survive read timeouts, an invalid length
/// prefix drops the connection.
fn shard_connection(stream: TcpStream, state: &ShardState, token: ShutdownToken) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        loop {
            match wire::take_frame(&mut buf) {
                Ok(Some(payload)) => {
                    let reply = match answer_shard(state, &payload) {
                        Ok(body) => ok_reply(&body),
                        Err(msg) => err_reply(&msg),
                    };
                    let frame = into_frame(&reply).unwrap_or_else(|| {
                        into_frame(&err_reply("reply exceeds MAX_FRAME"))
                            .expect("error replies fit one frame")
                    });
                    if stream.write_all(&frame).and_then(|()| stream.flush()).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
        if token.is_triggered() {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Decode and answer one shard request. Ownership is pre-validated so a
/// mis-routed id becomes a refusal, never a [`ShardState`] panic.
fn answer_shard(state: &ShardState, payload: &[u8]) -> Result<Vec<u8>, String> {
    match decode_shard_request(payload)? {
        ShardRequest::Info => {
            let mut body = Vec::with_capacity(4 * 4 + 8 * 2);
            body.extend_from_slice(&(state.index() as u32).to_le_bytes());
            body.extend_from_slice(&(state.entity_partition().shards() as u32).to_le_bytes());
            body.extend_from_slice(&(state.dim() as u32).to_le_bytes());
            body.extend_from_slice(&(state.k() as u32).to_le_bytes());
            body.extend_from_slice(&(state.entity_partition().rows() as u64).to_le_bytes());
            body.extend_from_slice(&(state.relation_partition().rows() as u64).to_le_bytes());
            Ok(body)
        }
        ShardRequest::Draws { salt, level, ids } => {
            if let Some(&id) = ids.iter().find(|&&id| !state.owns_entity(id)) {
                return Err(format!("entity {id} not owned by shard {}", state.index()));
            }
            let k = state.k();
            if ids.len().saturating_mul(k).saturating_mul(8) > MAX_FRAME {
                return Err("draws reply would exceed MAX_FRAME".to_owned());
            }
            let (children, relations) = state.draws(salt, level as usize, &ids);
            let mut body = Vec::with_capacity((children.len() + relations.len()) * 4);
            for &c in &children {
                body.extend_from_slice(&c.to_le_bytes());
            }
            for &r in &relations {
                body.extend_from_slice(&r.to_le_bytes());
            }
            Ok(body)
        }
        ShardRequest::Rows { table, ids } => {
            let owns = |id: u32| match table {
                TABLE_ENTITY => state.owns_entity(id),
                _ => state.owns_relation(id),
            };
            if let Some(&id) = ids.iter().find(|&&id| !owns(id)) {
                return Err(format!("row {id} not owned by shard {}", state.index()));
            }
            if ids.len().saturating_mul(state.dim()).saturating_mul(4) > MAX_FRAME {
                return Err("rows reply would exceed MAX_FRAME".to_owned());
            }
            let mut rows = Vec::with_capacity(ids.len() * state.dim());
            match table {
                TABLE_ENTITY => state.gather_entity_rows(&ids, &mut rows),
                _ => state.gather_relation_rows(&ids, &mut rows),
            }
            let mut body = Vec::with_capacity(rows.len() * 4);
            for &v in &rows {
                body.extend_from_slice(&v.to_le_bytes());
            }
            Ok(body)
        }
    }
}

// ---------------------------------------------------------------------------
// Router-side peer pool
// ---------------------------------------------------------------------------

/// What the shard reported at handshake; the router checks this against
/// its own [`RouterCore`] before serving anything.
#[derive(Clone, Copy, Debug)]
struct PeerInfo {
    index: usize,
    count: usize,
    dim: usize,
    k: usize,
    entities: usize,
    relations: usize,
}

fn decode_info(body: &[u8]) -> Result<PeerInfo, String> {
    if body.len() != 4 * 4 + 8 * 2 {
        return Err(format!("info reply of {} bytes, expected 32", body.len()));
    }
    let u32_at = |o: usize| u32::from_le_bytes(body[o..o + 4].try_into().unwrap()) as usize;
    let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap()) as usize;
    Ok(PeerInfo {
        index: u32_at(0),
        count: u32_at(4),
        dim: u32_at(8),
        k: u32_at(12),
        entities: u64_at(16),
        relations: u64_at(24),
    })
}

/// How a transact attempt failed, and whether the connection survives.
enum Transport {
    /// The stream may be desynchronised (partial write/read, timeout,
    /// invalid length prefix): the peer is marked dead.
    Fatal(ShardErrorKind),
    /// A complete, well-framed refusal: the stream stays usable.
    App(ShardErrorKind),
}

fn transact(stream: &mut TcpStream, request: &[u8]) -> Result<Vec<u8>, Transport> {
    let frame =
        into_frame(request).ok_or(Transport::App(ShardErrorKind::Protocol))? /* oversize request */;
    stream
        .write_all(&frame)
        .and_then(|()| stream.flush())
        .map_err(|_| Transport::Fatal(ShardErrorKind::Unavailable))?;
    let payload = wire::read_frame(stream).map_err(|e| match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => Transport::Fatal(ShardErrorKind::Timeout),
        ErrorKind::InvalidData => Transport::Fatal(ShardErrorKind::Protocol),
        _ => Transport::Fatal(ShardErrorKind::Unavailable),
    })?;
    parse_reply(&payload).map_err(|_| Transport::App(ShardErrorKind::Protocol))
}

type Job = (Vec<u8>, mpsc::SyncSender<Result<Vec<u8>, ShardErrorKind>>);

struct Peer {
    tx: mpsc::SyncSender<Job>,
    dead: Arc<AtomicBool>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// One worker owns the connection: jobs are strictly serialized per
/// peer, so request/reply pairing on the stream is trivial. Once the
/// peer is dead every remaining job fails fast without touching the
/// socket.
fn peer_worker(mut stream: TcpStream, rx: mpsc::Receiver<Job>, dead: Arc<AtomicBool>) {
    for (request, reply) in rx.iter() {
        let outcome = if dead.load(Ordering::Relaxed) {
            Err(ShardErrorKind::Unavailable)
        } else {
            match transact(&mut stream, &request) {
                Ok(body) => Ok(body),
                Err(Transport::App(kind)) => Err(kind),
                Err(Transport::Fatal(kind)) => {
                    dead.store(true, Ordering::Relaxed);
                    Err(kind)
                }
            }
        };
        // a submitter that gave up still must not take the worker down
        let _ = reply.send(outcome);
    }
}

/// A connection pool over the shard peers of one deployment,
/// implementing [`kgag::ShardFetch`] for the router. Construction
/// handshakes every peer and fails fast on any model-card or placement
/// mismatch; see the module docs for runtime failure semantics.
pub struct ShardPool {
    peers: Vec<Peer>,
    entity_part: Partition,
    relation_part: Partition,
    dim: usize,
    k: usize,
}

impl ShardPool {
    /// Connect to the shard peers, in shard order. Each peer must
    /// report the matching index, the full peer count, and the same
    /// model card as every other peer.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A], cfg: &ShardConfig) -> std::io::Result<ShardPool> {
        assert!(!addrs.is_empty(), "a sharded deployment needs at least one peer");
        let bad = |msg: String| std::io::Error::new(ErrorKind::InvalidData, msg);
        let mut streams = Vec::with_capacity(addrs.len());
        let mut first: Option<PeerInfo> = None;
        for (i, addr) in addrs.iter().enumerate() {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(cfg.timeout))?;
            let body = match transact(&mut stream, &encode_info()) {
                Ok(body) => body,
                Err(_) => return Err(bad(format!("shard {i}: info handshake failed"))),
            };
            let info = decode_info(&body).map_err(|e| bad(format!("shard {i}: {e}")))?;
            if info.index != i {
                return Err(bad(format!("peer {i} claims shard index {}", info.index)));
            }
            if info.count != addrs.len() {
                return Err(bad(format!(
                    "shard {i} expects {} peers, router has {}",
                    info.count,
                    addrs.len()
                )));
            }
            if let Some(f) = first {
                if (info.dim, info.k, info.entities, info.relations)
                    != (f.dim, f.k, f.entities, f.relations)
                {
                    return Err(bad(format!("shard {i} disagrees with shard 0 on the model card")));
                }
            } else {
                first = Some(info);
            }
            streams.push(stream);
        }
        let info = first.expect("at least one peer");
        let peers = streams
            .into_iter()
            .map(|stream| {
                let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue);
                let dead = Arc::new(AtomicBool::new(false));
                let worker_dead = Arc::clone(&dead);
                let worker = std::thread::spawn(move || peer_worker(stream, rx, worker_dead));
                Peer { tx, dead, worker: Some(worker) }
            })
            .collect();
        Ok(ShardPool {
            peers,
            entity_part: Partition::new(info.entities, addrs.len()),
            relation_part: Partition::new(info.relations, addrs.len()),
            dim: info.dim,
            k: info.k,
        })
    }

    pub fn count(&self) -> usize {
        self.peers.len()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn num_entities(&self) -> usize {
        self.entity_part.rows()
    }

    pub fn num_relation_slots(&self) -> usize {
        self.relation_part.rows()
    }

    /// Is `shard` known-dead? (Diagnostic; requests already fail with
    /// typed errors either way.)
    pub fn is_dead(&self, shard: usize) -> bool {
        self.peers[shard].dead.load(Ordering::Relaxed)
    }

    /// Enqueue one request on a peer; blocks while its queue is full.
    fn submit(
        &self,
        shard: usize,
        request: Vec<u8>,
    ) -> Result<mpsc::Receiver<Result<Vec<u8>, ShardErrorKind>>, ShardError> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.peers[shard]
            .tx
            .send((request, tx))
            .map_err(|_| ShardError { shard, kind: ShardErrorKind::Unavailable })?;
        Ok(rx)
    }

    fn collect(
        &self,
        shard: usize,
        rx: mpsc::Receiver<Result<Vec<u8>, ShardErrorKind>>,
    ) -> Result<Vec<u8>, ShardError> {
        match rx.recv() {
            Ok(Ok(body)) => Ok(body),
            Ok(Err(kind)) => Err(ShardError { shard, kind }),
            // worker gone: only possible when the pool is being torn down
            Err(_) => Err(ShardError { shard, kind: ShardErrorKind::Unavailable }),
        }
    }

    /// Scatter `ids` to their owners, gather `width` little-endian u32
    /// or f32 words per id back into query order via `write`.
    fn fan_out<T>(
        &self,
        part: &Partition,
        ids: &[u32],
        request: impl Fn(&[u32]) -> Vec<u8>,
        expect_words: impl Fn(usize) -> usize,
        mut scatter: impl FnMut(&[(usize, u32)], &[u8]) -> Result<(), ()>,
        out: T,
    ) -> Result<T, ShardError> {
        let buckets = part.split(ids);
        let mut pending = Vec::new();
        for (shard, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let shard_ids: Vec<u32> = bucket.iter().map(|&(_, id)| id).collect();
            pending.push((shard, self.submit(shard, request(&shard_ids))?));
        }
        for (shard, rx) in pending {
            let body = self.collect(shard, rx)?;
            let bucket = &buckets[shard];
            if body.len() != expect_words(bucket.len()) * 4 {
                return Err(ShardError { shard, kind: ShardErrorKind::Protocol });
            }
            scatter(bucket, &body)
                .map_err(|()| ShardError { shard, kind: ShardErrorKind::Protocol })?;
        }
        Ok(out)
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for mut peer in self.peers.drain(..) {
            let Peer { tx, worker, .. } = &mut peer;
            // closing the job channel lets the worker drain and exit
            drop(std::mem::replace(tx, mpsc::sync_channel(1).0));
            if let Some(w) = worker.take() {
                let _ = w.join();
            }
        }
    }
}

impl ShardFetch for ShardPool {
    fn fetch_draws(
        &self,
        salt: u64,
        level: usize,
        entities: &[u32],
    ) -> Result<(Vec<u32>, Vec<u32>), ShardError> {
        let k = self.k;
        let mut children = vec![0u32; entities.len() * k];
        let mut relations = vec![0u32; entities.len() * k];
        self.fan_out(
            &self.entity_part,
            entities,
            |ids| encode_draws(salt, level as u32, ids),
            |n| n * k * 2,
            |bucket, body| {
                let half = bucket.len() * k * 4;
                for (bi, &(pos, _)) in bucket.iter().enumerate() {
                    for j in 0..k {
                        let c = 4 * (bi * k + j);
                        children[pos * k + j] =
                            u32::from_le_bytes(body[c..c + 4].try_into().unwrap());
                        let r = half + c;
                        relations[pos * k + j] =
                            u32::from_le_bytes(body[r..r + 4].try_into().unwrap());
                    }
                }
                Ok(())
            },
            (),
        )?;
        Ok((children, relations))
    }

    fn fetch_entity_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        self.fetch_rows(TABLE_ENTITY, &self.entity_part, ids)
    }

    fn fetch_relation_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        self.fetch_rows(TABLE_RELATION, &self.relation_part, ids)
    }
}

impl ShardPool {
    fn fetch_rows(&self, table: u8, part: &Partition, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        let dim = self.dim;
        let mut rows = vec![0f32; ids.len() * dim];
        self.fan_out(
            part,
            ids,
            |shard_ids| encode_rows(table, shard_ids),
            |n| n * dim,
            |bucket, body| {
                for (bi, &(pos, _)) in bucket.iter().enumerate() {
                    for j in 0..dim {
                        let o = 4 * (bi * dim + j);
                        rows[pos * dim + j] =
                            f32::from_le_bytes(body[o..o + 4].try_into().unwrap());
                    }
                }
                Ok(())
            },
            (),
        )?;
        Ok(rows)
    }
}

// ---------------------------------------------------------------------------
// The sharded scorer
// ---------------------------------------------------------------------------

/// The router's batch scorer: a [`RouterCore`] fused over a
/// [`ShardPool`]. Implements [`TryBatchGroupScorer`] — serve it with
/// [`crate::serve_tcp_try`] — and fails *per case*: out-of-range ids
/// become [`ServeError::Invalid`], shard failures become
/// [`ServeError::Shard`] on exactly the requests that needed the
/// failing peer.
pub struct ShardedScorer {
    core: RouterCore,
    pool: ShardPool,
}

impl ShardedScorer {
    /// Pair a router core with a connected pool. Panics on a model-card
    /// mismatch — a deployment error no request could ever recover
    /// from.
    pub fn new(core: RouterCore, pool: ShardPool) -> ShardedScorer {
        assert_eq!(pool.dim(), core.dim(), "shard pool and router disagree on dim");
        assert_eq!(pool.k(), core.sampler_k(), "shard pool and router disagree on sampler k");
        assert_eq!(
            pool.num_entities(),
            core.num_entities(),
            "shard pool and router disagree on entity count"
        );
        assert_eq!(
            pool.num_relation_slots(),
            core.num_relation_slots(),
            "shard pool and router disagree on relation count"
        );
        ShardedScorer { core, pool }
    }

    pub fn core(&self) -> &RouterCore {
        &self.core
    }

    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }
}

impl TryBatchGroupScorer for ShardedScorer {
    fn try_score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<ServeResult> {
        // Bounds are validated here because RouterCore::score_cases
        // asserts them — a malformed wire request must become a typed
        // error, not a router panic.
        let mut out: Vec<Option<ServeResult>> = vec![None; cases.len()];
        let mut valid_idx = Vec::with_capacity(cases.len());
        let mut valid_cases = Vec::with_capacity(cases.len());
        for (i, (group, items)) in cases.iter().enumerate() {
            if *group >= self.core.num_groups() || items.iter().any(|&v| v >= self.core.num_items())
            {
                out[i] = Some(Err(ServeError::Invalid));
            } else {
                valid_idx.push(i);
                valid_cases.push((*group, items.clone()));
            }
        }
        if !valid_cases.is_empty() {
            let results = self.core.score_cases(&self.pool, &valid_cases);
            for (i, r) in valid_idx.into_iter().zip(results) {
                out[i] = Some(r.map_err(|e| ServeError::Shard(e.kind)));
            }
        }
        out.into_iter().map(|o| o.expect("every case resolved")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_request_roundtrips() {
        let p = encode_draws(0xdead_beef_u64, 2, &[1, 7, 42]);
        assert_eq!(
            decode_shard_request(&p).unwrap(),
            ShardRequest::Draws { salt: 0xdead_beef_u64, level: 2, ids: vec![1, 7, 42] }
        );
    }

    #[test]
    fn rows_request_roundtrips() {
        let p = encode_rows(TABLE_RELATION, &[0, 3]);
        assert_eq!(
            decode_shard_request(&p).unwrap(),
            ShardRequest::Rows { table: TABLE_RELATION, ids: vec![0, 3] }
        );
        assert_eq!(decode_shard_request(&encode_info()).unwrap(), ShardRequest::Info);
    }

    #[test]
    fn truncated_requests_are_refused_not_panicked() {
        let full = encode_draws(7, 1, &[1, 2, 3, 4]);
        for cut in 0..full.len() {
            assert!(
                decode_shard_request(&full[..cut]).is_err(),
                "cut at {cut} must fail to decode"
            );
        }
    }

    #[test]
    fn unknown_opcode_and_trailing_bytes_are_refused() {
        assert!(decode_shard_request(&[99]).is_err(), "unknown opcode");
        assert!(decode_shard_request(&[]).is_err(), "empty request");
        let mut p = encode_info();
        p.push(0);
        assert!(decode_shard_request(&p).is_err(), "trailing bytes");
        let bad_table = {
            let mut p = encode_rows(TABLE_ENTITY, &[1]);
            p[1] = 9;
            p
        };
        assert!(decode_shard_request(&bad_table).is_err(), "unknown table");
    }

    #[test]
    fn lying_id_count_is_a_framing_error() {
        // claims 1000 ids, supplies 2
        let mut p = vec![OP_SHARD_ROWS, TABLE_ENTITY];
        p.extend_from_slice(&1000u32.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&2u32.to_le_bytes());
        assert!(decode_shard_request(&p).is_err());
    }

    #[test]
    fn reply_status_bytes_are_honoured() {
        assert_eq!(parse_reply(&ok_reply(&[1, 2, 3])).unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_reply(&err_reply("nope")).unwrap_err(), "nope");
        assert!(parse_reply(&[]).is_err(), "empty reply");
    }

    #[test]
    fn info_reply_roundtrips() {
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&3u32.to_le_bytes());
        body.extend_from_slice(&16u32.to_le_bytes());
        body.extend_from_slice(&4u32.to_le_bytes());
        body.extend_from_slice(&1234u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        let info = decode_info(&body).unwrap();
        assert_eq!(
            (info.index, info.count, info.dim, info.k, info.entities, info.relations),
            (1, 3, 16, 4, 1234, 9)
        );
        assert!(decode_info(&body[..31]).is_err(), "short info reply");
    }

    #[test]
    fn shard_frames_reassemble_byte_at_a_time() {
        let reply = ok_reply(&encode_draws(1, 0, &[5, 6]));
        let frame = into_frame(&reply).unwrap();
        let mut buf = Vec::new();
        let mut seen = None;
        for (i, &b) in frame.iter().enumerate() {
            buf.push(b);
            match wire::take_frame(&mut buf).unwrap() {
                Some(payload) => {
                    assert_eq!(i, frame.len() - 1, "frame must only complete on the last byte");
                    seen = Some(payload);
                }
                None => assert!(i < frame.len() - 1),
            }
        }
        assert_eq!(seen.unwrap(), reply);
        assert!(buf.is_empty(), "no residue after a whole frame");
    }

    #[test]
    fn oversize_frames_are_rejected_at_both_ends() {
        assert!(into_frame(&vec![0u8; MAX_FRAME + 1]).is_none());
        let mut buf = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 8]);
        assert!(wire::take_frame(&mut buf).is_err(), "oversize length prefix poisons the stream");
    }

    #[test]
    fn shard_config_defaults() {
        let d = ShardConfig::default();
        assert_eq!(d.timeout, Duration::from_millis(2000));
        assert_eq!(d.queue, 64);
    }
}
