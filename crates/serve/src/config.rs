//! Serving knobs and their environment bindings.

use std::time::Duration;

/// Tuning for the micro-batcher and its queue. All knobs trade latency
/// against batch size; the defaults favour fusion on loopback-scale
/// round trips.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// How long a worker holds the *first* request of a batch open for
    /// more arrivals before scoring. Zero scores immediately (no
    /// fusion beyond what is already queued).
    pub batch_window: Duration,
    /// Hard cap on requests fused into one `score_batch` call.
    pub max_batch: usize,
    /// Bounded queue depth; submissions beyond it are rejected
    /// immediately (explicit backpressure, never unbounded memory).
    pub queue_capacity: usize,
    /// Batcher worker threads. One is usually right — the scorer
    /// parallelises internally via the pool — but more overlap queue
    /// drain with scoring on large models.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_micros(200),
            max_batch: 64,
            queue_capacity: 4096,
            workers: 1,
        }
    }
}

impl ServeConfig {
    /// Read the config from the environment, falling back to defaults:
    /// `KGAG_SERVE_BATCH_WINDOW_US`, `KGAG_SERVE_MAX_BATCH`,
    /// `KGAG_SERVE_QUEUE`, `KGAG_SERVE_WORKERS`. Unparseable values are
    /// ignored (defaults win); counts are clamped to at least 1.
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            batch_window: Duration::from_micros(parse_or(
                std::env::var("KGAG_SERVE_BATCH_WINDOW_US").ok().as_deref(),
                d.batch_window.as_micros() as u64,
                0,
            )),
            max_batch: parse_or(
                std::env::var("KGAG_SERVE_MAX_BATCH").ok().as_deref(),
                d.max_batch as u64,
                1,
            ) as usize,
            queue_capacity: parse_or(
                std::env::var("KGAG_SERVE_QUEUE").ok().as_deref(),
                d.queue_capacity as u64,
                1,
            ) as usize,
            workers: parse_or(
                std::env::var("KGAG_SERVE_WORKERS").ok().as_deref(),
                d.workers as u64,
                1,
            ) as usize,
        }
    }
}

/// `val` parsed as `u64`, clamped to `min`; `default` when absent or
/// unparseable. Factored out of [`ServeConfig::from_env`] (and shared
/// with [`crate::ShardConfig`]) so parsing is testable without touching
/// process-global environment state.
pub(crate) fn parse_or(val: Option<&str>, default: u64, min: u64) -> u64 {
    val.and_then(|v| v.trim().parse::<u64>().ok()).map(|v| v.max(min)).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_or_accepts_valid_and_falls_back() {
        assert_eq!(parse_or(Some("250"), 200, 0), 250);
        assert_eq!(parse_or(Some(" 8 "), 64, 1), 8);
        assert_eq!(parse_or(None, 64, 1), 64);
        assert_eq!(parse_or(Some("not-a-number"), 64, 1), 64);
        assert_eq!(parse_or(Some("-3"), 64, 1), 64);
    }

    #[test]
    fn parse_or_clamps_to_min() {
        assert_eq!(parse_or(Some("0"), 64, 1), 1);
        assert_eq!(parse_or(Some("0"), 200, 0), 0);
    }

    #[test]
    fn defaults_are_sane() {
        let d = ServeConfig::default();
        assert!(d.max_batch >= 1 && d.queue_capacity >= 1 && d.workers >= 1);
        assert!(d.batch_window < Duration::from_millis(10), "window is a micro-latency budget");
    }
}
