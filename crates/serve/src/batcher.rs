//! The adaptive micro-batcher: one bounded queue, worker threads that
//! fuse queued requests into `score_batch` calls under a latency
//! budget, and a graceful drain on shutdown.
//!
//! Invariants (tested in `tests/serve_props.rs`, enforced end-to-end by
//! the `serve_check` CI gate):
//!
//! * **Exactly-one response.** Every request accepted by
//!   [`ServeHandle::submit`] resolves exactly once — scores, or a
//!   terminal [`ServeError`]. Shutdown drains the queue; nothing
//!   accepted is dropped, nothing is answered twice.
//! * **Fusion is value-neutral.** Workers only ever *group* requests
//!   into [`BatchGroupScorer::score_batch`] calls; they never reorder
//!   scores within a request or mix rows across requests. With a
//!   chunking-invariant scorer (the engine's `BatchScorer`), served
//!   scores are bit-identical to any offline scoring of the same cases.
//! * **Bounded memory.** The queue never exceeds
//!   [`ServeConfig::queue_capacity`]; overflow is an immediate
//!   [`ServeError::Rejected`], so a slow model sheds load instead of
//!   accumulating it.

use crate::config::ServeConfig;
use crate::{ServeError, ServeResult, TryBatchGroupScorer};
use kgag_tensor::pool;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// One queued request: what to score, when it expires, and where the
/// answer goes. The response channel has capacity 1 and each request is
/// answered at most once, so worker sends never block.
struct Pending {
    group: u32,
    items: Vec<u32>,
    deadline: Option<Instant>,
    enqueued: Instant,
    tx: mpsc::SyncSender<ServeResult>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// `false` once shutdown is triggered: no new submissions, workers
    /// drain the remainder and exit.
    open: bool,
}

/// Telemetry handles, interned once per process. Recording is a few
/// relaxed atomics — passive by the kgag-obs contract, so it never
/// perturbs scores.
struct Metrics {
    accepted: Arc<kgag_obs::Counter>,
    rejected: Arc<kgag_obs::Counter>,
    deadline_missed: Arc<kgag_obs::Counter>,
    responses: Arc<kgag_obs::Counter>,
    batches: Arc<kgag_obs::Counter>,
    queue_depth: Arc<kgag_obs::Gauge>,
    batch_requests: Arc<kgag_obs::Histogram>,
    latency_ns: Arc<kgag_obs::Histogram>,
    batch_score_ns: Arc<kgag_obs::Histogram>,
    scorer_panics: Arc<kgag_obs::Counter>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            accepted: kgag_obs::counter("serve.requests_accepted"),
            rejected: kgag_obs::counter("serve.requests_rejected"),
            deadline_missed: kgag_obs::counter("serve.deadline_missed"),
            responses: kgag_obs::counter("serve.responses"),
            batches: kgag_obs::counter("serve.batches"),
            queue_depth: kgag_obs::gauge("serve.queue_depth"),
            batch_requests: kgag_obs::histogram("serve.batch_requests"),
            latency_ns: kgag_obs::histogram("serve.latency_ns"),
            batch_score_ns: kgag_obs::histogram("serve.batch_score_ns"),
            scorer_panics: kgag_obs::counter("serve.scorer_panics"),
        }
    }
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
    cfg: ServeConfig,
    metrics: Metrics,
    /// Live requests: accepted but not yet responded to. Lets tests and
    /// the drain guard observe "everything answered" directly.
    in_flight: AtomicUsize,
}

/// A cloneable client handle to a running batcher. All methods are
/// callable from any thread.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

/// An accepted request's pending response. [`wait`](Self::wait) blocks
/// until the batcher resolves it.
pub struct PendingResponse {
    rx: mpsc::Receiver<ServeResult>,
}

impl PendingResponse {
    /// Block until the request resolves. Returns
    /// [`ServeError::Canceled`] only if the server died abnormally
    /// before answering.
    pub fn wait(self) -> ServeResult {
        self.rx.recv().unwrap_or(Err(ServeError::Canceled))
    }
}

impl ServeHandle {
    /// Enqueue one scoring request. Returns immediately:
    /// `Ok(PendingResponse)` when accepted, [`ServeError::Rejected`]
    /// when the queue is full or the server has shut down. A `deadline`
    /// in the past (relative to worker drain time) resolves to
    /// [`ServeError::DeadlineMissed`] without scoring.
    pub fn submit(
        &self,
        group: u32,
        items: Vec<u32>,
        deadline: Option<Instant>,
    ) -> Result<PendingResponse, ServeError> {
        let shared = &self.shared;
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut st = shared.state.lock().unwrap();
            if !st.open || st.queue.len() >= shared.cfg.queue_capacity {
                drop(st);
                shared.metrics.rejected.add(1);
                return Err(ServeError::Rejected);
            }
            st.queue.push_back(Pending { group, items, deadline, enqueued: Instant::now(), tx });
        }
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        shared.metrics.accepted.add(1);
        shared.metrics.queue_depth.add(1.0);
        shared.cv.notify_one();
        Ok(PendingResponse { rx })
    }

    /// Submit and block for the scores — the synchronous convenience
    /// used by per-connection server threads.
    pub fn score(&self, group: u32, items: Vec<u32>) -> ServeResult {
        self.submit(group, items, None)?.wait()
    }

    /// Like [`score`](Self::score) with an absolute expiry.
    pub fn score_by(&self, group: u32, items: Vec<u32>, deadline: Instant) -> ServeResult {
        self.submit(group, items, Some(deadline))?.wait()
    }

    /// Stop accepting new requests and wake every worker. Idempotent.
    /// Already-accepted requests are still drained and answered.
    pub fn shutdown(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.open = false;
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Is the batcher still accepting submissions?
    pub fn is_open(&self) -> bool {
        self.shared.state.lock().unwrap().open
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Requests accepted but not yet responded to (queued or scoring).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }
}

/// Run a batching server over `scorer` for the duration of `f`.
///
/// Spawns [`ServeConfig::workers`] worker threads borrowing `scorer`,
/// hands `f` a [`ServeHandle`] (clone it into as many client threads as
/// needed), and on exit — *including* a panic inside `f` — triggers
/// shutdown, drains every accepted request, and joins the workers
/// before returning. The caller's pool thread-count override is
/// captured here and re-applied inside each worker, since the pool's
/// thread-local override does not propagate to newly spawned threads.
pub fn serve_in_process<S, R>(
    scorer: &S,
    config: &ServeConfig,
    f: impl FnOnce(ServeHandle) -> R,
) -> R
where
    S: kgag_eval::protocol::BatchGroupScorer + Sync + ?Sized,
{
    serve_in_process_try(&crate::InfallibleScorer(scorer), config, f)
}

/// [`serve_in_process`] for scorers whose cases can fail individually —
/// the entry point the sharded [`ShardedScorer`](crate::ShardedScorer)
/// uses, where a dead peer must fail only the requests that needed it.
pub fn serve_in_process_try<S, R>(
    scorer: &S,
    config: &ServeConfig,
    f: impl FnOnce(ServeHandle) -> R,
) -> R
where
    S: TryBatchGroupScorer,
{
    let shared = Arc::new(Shared {
        state: Mutex::new(QueueState { queue: VecDeque::new(), open: true }),
        cv: Condvar::new(),
        cfg: config.clone(),
        metrics: Metrics::new(),
        in_flight: AtomicUsize::new(0),
    });
    let handle = ServeHandle { shared: Arc::clone(&shared) };
    let threads = pool::num_threads();
    std::thread::scope(|s| {
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            s.spawn(move || pool::with_threads(threads, || worker_loop(scorer, &shared)));
        }
        // Shutdown must fire even if `f` unwinds: thread::scope joins
        // workers before propagating the panic, and workers only exit
        // once the queue is closed — without this guard a panic in `f`
        // would deadlock the join.
        let _drain = DrainGuard(handle.clone());
        f(handle)
    })
}

struct DrainGuard(ServeHandle);

impl Drop for DrainGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// An *owned* running batcher: workers hold an `Arc` to the scorer
/// instead of borrowing it, so the batcher's lifetime is dynamic — the
/// shape the model registry needs, where entries (and their batchers)
/// are created by `LOAD` requests and retired at runtime rather than
/// scoped to a stack frame.
///
/// Same delivery contract as [`serve_in_process_try`]: dropping the
/// guard (or calling [`shutdown`](Self::shutdown)) stops admissions,
/// drains every accepted request, and joins the workers. The scorer is
/// freed when the last `Arc` drops — after the workers exit.
pub struct BatcherGuard {
    handle: ServeHandle,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl BatcherGuard {
    /// A cloneable client handle to this batcher.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Stop accepting, drain, and join — the explicit form of `Drop`.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for BatcherGuard {
    fn drop(&mut self) {
        self.handle.shutdown();
        for w in self.workers.drain(..) {
            // A worker that panicked already answered or stranded
            // nothing new (score_and_respond catches scorer unwinds;
            // anything else is a batcher bug) — surfacing the panic
            // here would abort an otherwise-sound teardown.
            let _ = w.join();
        }
    }
}

/// Spawn [`ServeConfig::workers`] detached-lifetime workers over an
/// owned scorer and return the [`BatcherGuard`] that drains and joins
/// them on drop. The caller's pool thread-count override is captured
/// here and re-applied inside each worker, exactly as
/// [`serve_in_process_try`] does for scoped workers.
pub fn spawn_batcher<S>(scorer: Arc<S>, config: &ServeConfig) -> BatcherGuard
where
    S: TryBatchGroupScorer + Send + Sync + 'static,
{
    let shared = Arc::new(Shared {
        state: Mutex::new(QueueState { queue: VecDeque::new(), open: true }),
        cv: Condvar::new(),
        cfg: config.clone(),
        metrics: Metrics::new(),
        in_flight: AtomicUsize::new(0),
    });
    let handle = ServeHandle { shared: Arc::clone(&shared) };
    let threads = pool::num_threads();
    let workers = (0..shared.cfg.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let scorer = Arc::clone(&scorer);
            std::thread::spawn(move || {
                pool::with_threads(threads, || worker_loop(&*scorer, &shared))
            })
        })
        .collect();
    BatcherGuard { handle, workers }
}

/// One worker: wait for work, hold the batch window open, drain a
/// chunk, score, respond; exit when the queue is closed *and* empty.
fn worker_loop<S: TryBatchGroupScorer + ?Sized>(scorer: &S, shared: &Shared) {
    let cfg = &shared.cfg;
    loop {
        let mut st = shared.state.lock().unwrap();
        while st.queue.is_empty() && st.open {
            st = shared.cv.wait(st).unwrap();
        }
        if st.queue.is_empty() {
            return; // closed and fully drained
        }
        // Adaptive window: the first request of a batch waits up to
        // `batch_window` for company, but a full chunk or a shutdown
        // flushes immediately.
        if st.open && st.queue.len() < cfg.max_batch && !cfg.batch_window.is_zero() {
            let window_end = Instant::now() + cfg.batch_window;
            loop {
                let now = Instant::now();
                if now >= window_end || st.queue.len() >= cfg.max_batch || !st.open {
                    break;
                }
                let (guard, _) = shared.cv.wait_timeout(st, window_end - now).unwrap();
                st = guard;
            }
        }
        if st.queue.is_empty() {
            // A peer worker can steal every queued request while this
            // one sits in `wait_timeout` above. Draining the empty
            // queue anyway would record a phantom batch (a 0-length
            // `batch_requests` sample and a bogus `serve.batches`
            // tick); go back to waiting instead.
            continue;
        }
        let take = st.queue.len().min(cfg.max_batch);
        let batch: Vec<Pending> = st.queue.drain(..take).collect();
        let backlog = !st.queue.is_empty();
        drop(st);
        if backlog {
            // Leftovers belong to the next batch; wake a peer so they
            // are not stranded until the next submission's notify.
            shared.cv.notify_one();
        }
        shared.metrics.queue_depth.add(-(take as f64));
        shared.metrics.batches.add(1);
        shared.metrics.batch_requests.record(take as u64);
        score_and_respond(scorer, shared, batch);
    }
}

fn score_and_respond<S: TryBatchGroupScorer + ?Sized>(
    scorer: &S,
    shared: &Shared,
    batch: Vec<Pending>,
) {
    // Expired requests are dropped *before* scoring — their slots do not
    // inflate the fused batch.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        if p.deadline.is_some_and(|d| d < now) {
            shared.metrics.deadline_missed.add(1);
            respond(shared, &p.tx, Err(ServeError::DeadlineMissed));
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    let mut cases = Vec::with_capacity(live.len());
    let mut meta = Vec::with_capacity(live.len());
    for p in live {
        cases.push((p.group, p.items));
        meta.push((p.tx, p.enqueued));
    }
    let t0 = Instant::now();
    // A panicking scorer must not take the worker down: queued requests
    // would strand unanswered and the drain join would deadlock. The
    // panic is confined to this batch — every live request in it is
    // answered `Canceled` — and the worker survives to score the next
    // one. (`AssertUnwindSafe` is sound here: the scorer is `&S`, and a
    // scorer left inconsistent by its own panic is the scorer's bug —
    // the batcher's own state is untouched by the unwind.)
    let results =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scorer.try_score_batch(&cases)));
    shared.metrics.batch_score_ns.record(t0.elapsed().as_nanos() as u64);
    let results = match results {
        Ok(results) => results,
        Err(_) => {
            shared.metrics.scorer_panics.add(1);
            for (tx, _) in meta {
                respond(shared, &tx, Err(ServeError::Canceled));
            }
            return;
        }
    };
    assert_eq!(
        results.len(),
        meta.len(),
        "scorer broke the TryBatchGroupScorer contract: {} cases, {} results",
        meta.len(),
        results.len()
    );
    for (result, (tx, enqueued)) in results.into_iter().zip(meta) {
        shared.metrics.latency_ns.record(enqueued.elapsed().as_nanos() as u64);
        respond(shared, &tx, result);
    }
}

fn respond(shared: &Shared, tx: &mpsc::SyncSender<ServeResult>, result: ServeResult) {
    shared.metrics.responses.add(1);
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    // A client that dropped its PendingResponse just discards the
    // answer; that must not take the worker down.
    let _ = tx.send(result);
}
