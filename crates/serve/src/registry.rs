//! The multi-tenant registry server (DESIGN.md §16): protocol-v3
//! dispatch over a [`kgag::ModelRegistry`], with one owned batcher per
//! resident checkpoint, admission control in front of the queues, and
//! live shadow-scoring feeding the registry's circuit breaker.
//!
//! Composition, outermost in:
//!
//! * [`serve_tcp_registry`] — the same accept loop / framing machinery
//!   as [`crate::serve_tcp`] (one thread per connection, partial-frame
//!   safe), dispatching to a [`RegistryServer`].
//! * [`RegistryServer`] — routes each decoded message: tenant-tagged
//!   scores through admission → per-entry batcher; registry transitions
//!   (LOAD/BIND/SHADOW/PROMOTE/ROLLBACK/RETIRE) through the state
//!   machine synchronously on the connection thread, like lifecycle
//!   mutations; v2 un-tenanted opcodes answered
//!   [`ServeError::Unsupported`].
//! * [`Governor`] — per-tenant token buckets. Admission control is off
//!   only when no capacity is configured ([`Governor::unlimited`],
//!   `quota_burst: None`); a configured `burst == 0` is a closed valve
//!   that sheds everything. `rate == 0` never refills, so a bucket
//!   admits exactly `burst` requests — the deterministic configuration
//!   the quota tests and the `registry_check` CI stage pin.
//!
//! Zero-downtime by construction: scoring pins its entry via
//! [`kgag::ModelRegistry::resolve`] (an `Arc` clone) *and* its batcher
//! handle before releasing the registry lock, so a concurrent
//! PROMOTE/ROLLBACK/RETIRE never tears an in-flight request — it
//! finishes on the exact model it was admitted under, and RETIRE drains
//! the entry's batcher before the model drops.
//!
//! Shadow discipline: every `shadow_sample`-th admitted request whose
//! tenant has a staged candidate is mirrored through the *candidate's
//! batcher* (arbitrary fusion with other traffic), then compared
//! bit-for-bit against the candidate's own offline
//! [`score_cases`](kgag::RegistryModel::score_cases) — the `serve_check`
//! chunking-invariance oracle, applied continuously to live traffic.
//! Verdicts feed [`kgag::ModelRegistry::record_shadow`]; one mismatch
//! quarantines the candidate registry-wide. The mirrored scoring rides
//! the serving thread, so the *active* response a client sees is never
//! delayed by more than its own shadow sample.

use crate::batcher::{spawn_batcher, BatcherGuard, ServeHandle};
use crate::config::{parse_or, ServeConfig};
use crate::server::{serve_connections, Dispatch, ShutdownToken};
use crate::wire::{Message, RegistryOp, Response, TenantRequest};
use crate::{ServeError, ServeResult, TryBatchGroupScorer};
use kgag::{checkpoint_hash, ModelRegistry, RegistryModel};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Builds a [`RegistryModel`] from raw checkpoint bytes and their
/// content hash — the seam between the transport (which only moves
/// paths and bytes) and model construction (which needs the dataset to
/// rebuild graph structure before `load_checkpoint`). The CLI installs
/// a factory closing over its dataset; tests close over fixtures.
pub type ModelFactory = Box<dyn Fn(&[u8], u64) -> Result<RegistryModel, String> + Send + Sync>;

/// Knobs for the registry serve path, layered over the per-entry
/// batcher's [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Per-entry batcher tuning (each resident checkpoint gets its own
    /// queue and workers with these settings).
    pub serve: ServeConfig,
    /// Token-bucket refill, tokens per second per tenant. `0.0` never
    /// refills (each bucket is spent once), which is what deterministic
    /// tests pin.
    pub quota_rate: f64,
    /// Token-bucket capacity per tenant. `None` disables admission
    /// control entirely (every request admitted); `Some(0)` is a closed
    /// valve that sheds *everything* — a real capacity of zero, not a
    /// disable switch.
    pub quota_burst: Option<u64>,
    /// Mirror every Nth admitted request of a shadowing tenant onto the
    /// staged candidate; `1` shadows everything, `0` never samples
    /// (candidates then only prove themselves via `min_clean == 0`).
    pub shadow_sample: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            serve: ServeConfig::default(),
            quota_rate: 0.0,
            quota_burst: None,
            shadow_sample: 1,
        }
    }
}

impl RegistryConfig {
    /// Read the config from the environment, falling back to defaults:
    /// `KGAG_QUOTA_RATE` (tokens/sec, f64), `KGAG_QUOTA_BURST` (unset
    /// = no admission control; any set value, including `0`, is a real
    /// capacity), `KGAG_SHADOW_SAMPLE`, plus the batcher's own
    /// `KGAG_SERVE_*` knobs. Unparseable values are ignored.
    pub fn from_env() -> Self {
        let d = RegistryConfig::default();
        RegistryConfig {
            serve: ServeConfig::from_env(),
            quota_rate: std::env::var("KGAG_QUOTA_RATE")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|r| r.is_finite() && *r >= 0.0)
                .unwrap_or(d.quota_rate),
            quota_burst: std::env::var("KGAG_QUOTA_BURST")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .or(d.quota_burst),
            shadow_sample: parse_or(
                std::env::var("KGAG_SHADOW_SAMPLE").ok().as_deref(),
                d.shadow_sample,
                0,
            ),
        }
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-tenant token-bucket admission control. Buckets start full
/// (`burst` tokens), spend one token per admitted request, and refill
/// continuously at `rate` tokens/sec up to `burst`.
///
/// Disabling admission control is an explicit mode
/// ([`Governor::unlimited`]), not a magic capacity value: a limiting
/// governor with `burst == 0` has an always-empty bucket and sheds
/// every request deterministically.
pub struct Governor {
    rate: f64,
    /// `None` = unlimited (admit everything); `Some(b)` = real capacity,
    /// including `Some(0.0)` (shed everything).
    burst: Option<f64>,
    buckets: Mutex<BTreeMap<u32, Bucket>>,
}

impl Governor {
    /// A governor admitting `burst` requests per tenant up front and
    /// `rate` per second steady-state. Always limits — `burst == 0`
    /// admits nothing; use [`Governor::unlimited`] to disable admission
    /// control.
    pub fn new(rate: f64, burst: u64) -> Governor {
        Governor { rate, burst: Some(burst as f64), buckets: Mutex::new(BTreeMap::new()) }
    }

    /// A governor with admission control disabled: every request from
    /// every tenant is admitted, no bucket state is kept.
    pub fn unlimited() -> Governor {
        Governor { rate: 0.0, burst: None, buckets: Mutex::new(BTreeMap::new()) }
    }

    /// Spend one token from the tenant's bucket. `false` means the
    /// request must be shed ([`ServeError::Quota`]).
    pub fn admit(&self, tenant: u32) -> bool {
        let burst = match self.burst {
            None => return true,
            Some(b) => b,
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(tenant).or_insert_with(|| Bucket { tokens: burst, last: now });
        if self.rate > 0.0 {
            let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
            bucket.tokens = (bucket.tokens + dt * self.rate).min(burst);
        }
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Adapter putting one registry entry behind the batcher's fallible
/// scorer seam. Bounds are pre-validated on the connection thread, so a
/// residual `score_cases` rejection here (a race against nothing — the
/// entry is immutable) degrades to [`ServeError::Invalid`] per case
/// rather than a panic.
struct EntryScorer(Arc<RegistryModel>);

impl TryBatchGroupScorer for EntryScorer {
    fn try_score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<ServeResult> {
        match self.0.score_cases(cases) {
            Ok(rows) => rows.into_iter().map(Ok).collect(),
            Err(_) => cases.iter().map(|_| Err(ServeError::Invalid)).collect(),
        }
    }
}

/// Per-tenant telemetry handles, interned lazily under
/// `registry.tenant<id>.*`.
struct TenantMetrics {
    accepted: Arc<kgag_obs::Counter>,
    quota_rejected: Arc<kgag_obs::Counter>,
}

struct Metrics {
    loads: Arc<kgag_obs::Counter>,
    promotions: Arc<kgag_obs::Counter>,
    rollbacks: Arc<kgag_obs::Counter>,
    retirements: Arc<kgag_obs::Counter>,
    shadow_clean: Arc<kgag_obs::Counter>,
    shadow_mismatch: Arc<kgag_obs::Counter>,
    tenants: Mutex<BTreeMap<u32, TenantMetrics>>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            loads: kgag_obs::counter("registry.loads"),
            promotions: kgag_obs::counter("registry.promotions"),
            rollbacks: kgag_obs::counter("registry.rollbacks"),
            retirements: kgag_obs::counter("registry.retirements"),
            shadow_clean: kgag_obs::counter("registry.shadow_clean"),
            shadow_mismatch: kgag_obs::counter("registry.shadow_mismatch"),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    fn tenant(&self, id: u32, f: impl FnOnce(&TenantMetrics)) {
        let mut tenants = self.tenants.lock().unwrap();
        let m = tenants.entry(id).or_insert_with(|| TenantMetrics {
            accepted: kgag_obs::counter(&format!("registry.tenant{id}.accepted")),
            quota_rejected: kgag_obs::counter(&format!("registry.tenant{id}.quota_rejected")),
        });
        f(m);
    }
}

/// The serve-side composition over [`kgag::ModelRegistry`]: per-entry
/// batchers, admission control, shadow mirroring, and the v3 dispatch.
/// Dropping the server shuts down and drains every entry's batcher.
pub struct RegistryServer {
    registry: ModelRegistry,
    factory: ModelFactory,
    batchers: Mutex<BTreeMap<u64, BatcherGuard>>,
    governor: Governor,
    cfg: RegistryConfig,
    shadow_tick: AtomicU64,
    metrics: Metrics,
}

impl RegistryServer {
    /// An empty server; entries arrive via [`install`](Self::install)
    /// (in-process) or the wire's LOAD through `factory`.
    pub fn new(cfg: RegistryConfig, factory: ModelFactory) -> RegistryServer {
        RegistryServer {
            registry: ModelRegistry::new(),
            factory,
            batchers: Mutex::new(BTreeMap::new()),
            governor: match cfg.quota_burst {
                Some(burst) => Governor::new(cfg.quota_rate, burst),
                None => Governor::unlimited(),
            },
            cfg,
            shadow_tick: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    /// The underlying state machine, for bootstrap (bind tenants before
    /// opening the socket) and for test assertions.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Make an already-built entry resident and spin up its batcher.
    /// The in-process twin of the wire's LOAD.
    pub fn install(&self, entry: RegistryModel) -> Result<u64, ServeError> {
        self.install_with(entry, EntryScorer)
    }

    /// [`install`](Self::install) with the entry's batcher scorer
    /// wrapped in a [`crate::FaultScorer`] — the seam the fault suites
    /// and `registry_check` use to prove the shadow circuit breaker
    /// trips on a genuinely divergent serve path (a scripted `Corrupt`
    /// is the minimal bit-identity violation).
    pub fn install_faulted(
        &self,
        entry: RegistryModel,
        plan: kgag_testkit::FaultPlan,
    ) -> Result<u64, ServeError> {
        self.install_with(entry, |m| crate::FaultScorer::new(EntryScorer(m), plan))
    }

    fn install_with<S>(
        &self,
        entry: RegistryModel,
        wrap: impl FnOnce(Arc<RegistryModel>) -> S,
    ) -> Result<u64, ServeError>
    where
        S: TryBatchGroupScorer + Send + Sync + 'static,
    {
        let hash = self.registry.load(entry).map_err(ServeError::Registry)?;
        let model = self.registry.entry(hash).expect("entry resident immediately after load");
        let guard = spawn_batcher(Arc::new(wrap(model)), &self.cfg.serve);
        self.batchers.lock().unwrap().insert(hash, guard);
        self.metrics.loads.add(1);
        Ok(hash)
    }

    /// LOAD: read a server-local checkpoint, build an entry through the
    /// factory, make it resident. Unreadable paths and factory
    /// rejections are [`ServeError::LoadFailed`] (detail to stderr);
    /// re-loading resident bytes is the registry's `DuplicateModel`.
    pub fn load_path(&self, path: &str) -> Result<u64, ServeError> {
        let bytes = std::fs::read(path).map_err(|e| {
            eprintln!("[kgag-serve] load {path:?} failed: {e}");
            ServeError::LoadFailed
        })?;
        let hash = checkpoint_hash(&bytes);
        let entry = (self.factory)(&bytes, hash).map_err(|e| {
            eprintln!("[kgag-serve] checkpoint {path:?} rejected: {e}");
            ServeError::LoadFailed
        })?;
        self.install(entry)
    }

    /// Admit, pin, score. The active entry and its batcher handle are
    /// both resolved before scoring starts, so concurrent transitions
    /// cannot tear this request.
    fn score_tenant(&self, req: &TenantRequest) -> ServeResult {
        if !self.governor.admit(req.tenant) {
            self.metrics.tenant(req.tenant, |m| m.quota_rejected.add(1));
            return Err(ServeError::Quota);
        }
        let admission = self.registry.resolve(req.tenant).map_err(ServeError::Registry)?;
        self.metrics.tenant(req.tenant, |m| m.accepted.add(1));
        let active = &admission.active;
        if req.group >= active.num_groups() || req.items.iter().any(|&v| v >= active.num_items()) {
            return Err(ServeError::Invalid);
        }
        let handle = match self.handle_of(active.hash()) {
            Some(h) => h,
            None => return Err(ServeError::Rejected), // entry retired mid-resolve
        };
        let deadline = crate::server::wire_deadline(req.deadline_us);
        let result = match handle.submit(req.group, req.items.clone(), deadline) {
            Ok(pending) => pending.wait(),
            Err(e) => Err(e),
        };
        if let Some(shadow) = admission.shadow {
            self.maybe_shadow(req, &shadow);
        }
        result
    }

    /// Mirror every `shadow_sample`-th request onto the staged
    /// candidate and report the bit-identity verdict. The comparison is
    /// served-through-the-batcher (arbitrary fusion with whatever else
    /// is queued) against the candidate's own offline `score_cases` of
    /// just this case — chunking invariance asserted on live traffic.
    fn maybe_shadow(&self, req: &TenantRequest, shadow: &Arc<RegistryModel>) {
        let n = self.cfg.shadow_sample;
        if n == 0 || self.shadow_tick.fetch_add(1, Ordering::Relaxed) % n != 0 {
            return;
        }
        if req.group >= shadow.num_groups() || req.items.iter().any(|&v| v >= shadow.num_items()) {
            // The candidate cannot represent this request (smaller
            // catalog); that is a capability gap, not a scoring
            // divergence — skip rather than poison the verdict.
            return;
        }
        let handle = match self.handle_of(shadow.hash()) {
            Some(h) => h,
            None => return,
        };
        let served = match handle.submit(req.group, req.items.clone(), None) {
            Ok(pending) => pending.wait(),
            Err(_) => return, // shed shadow work is no verdict at all
        };
        let offline = match shadow.score_cases(&[(req.group, req.items.clone())]) {
            Ok(mut rows) => rows.pop().unwrap_or_default(),
            Err(_) => return,
        };
        let clean = match served {
            Ok(scores) => {
                scores.len() == offline.len()
                    && scores.iter().zip(&offline).all(|(a, b)| a.to_bits() == b.to_bits())
            }
            Err(_) => return,
        };
        if clean {
            self.metrics.shadow_clean.add(1);
        } else {
            self.metrics.shadow_mismatch.add(1);
        }
        self.registry.record_shadow(req.tenant, shadow.hash(), clean);
    }

    fn handle_of(&self, hash: u64) -> Option<ServeHandle> {
        self.batchers.lock().unwrap().get(&hash).map(|g| g.handle())
    }

    /// Apply one registry transition; the ack hash is the version the
    /// transition settled on.
    fn apply(&self, op: &RegistryOp) -> Result<u64, ServeError> {
        match op {
            RegistryOp::Load { path } => self.load_path(path),
            RegistryOp::Bind { tenant, hash } => {
                self.registry.bind(*tenant, *hash).map_err(ServeError::Registry)?;
                Ok(*hash)
            }
            RegistryOp::Shadow { tenant, hash, min_clean } => {
                self.registry
                    .stage_shadow(*tenant, *hash, *min_clean)
                    .map_err(ServeError::Registry)?;
                Ok(*hash)
            }
            RegistryOp::Promote { tenant } => {
                let hash = self.registry.promote(*tenant).map_err(ServeError::Registry)?;
                self.metrics.promotions.add(1);
                Ok(hash)
            }
            RegistryOp::Rollback { tenant } => {
                let hash = self.registry.rollback(*tenant).map_err(ServeError::Registry)?;
                self.metrics.rollbacks.add(1);
                Ok(hash)
            }
            RegistryOp::Retire { hash } => {
                let model = self.registry.retire(*hash).map_err(ServeError::Registry)?;
                // Drain the entry's batcher before the model can drop:
                // every request admitted under the retired version is
                // still answered (the guard joins its workers).
                let guard = self.batchers.lock().unwrap().remove(hash);
                drop(guard);
                drop(model);
                self.metrics.retirements.add(1);
                Ok(*hash)
            }
        }
    }
}

impl Dispatch for RegistryServer {
    fn dispatch(&self, msg: Message) -> Response {
        match msg {
            Message::Tenant(req) => Response::from_result(req.id, self.score_tenant(&req)),
            Message::Registry(req) => Response::from_registry(req.id, self.apply(&req.op)),
            // Version skew: a registry server has no un-tenanted
            // default model and no lifecycle backend.
            Message::Score(req) => Response { id: req.id, reply: Err(ServeError::Unsupported) },
            Message::Lifecycle(req) => Response { id: req.id, reply: Err(ServeError::Unsupported) },
        }
    }
}

/// Serve a [`RegistryServer`] over TCP until `token` triggers — the
/// registry twin of [`crate::serve_tcp`], sharing its accept loop,
/// framing, and shutdown drain. Entries installed before or during the
/// serve keep their batchers; on return the server is still usable (and
/// still draining batchers only when dropped).
pub fn serve_tcp_registry(
    server: &RegistryServer,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    on_ready(local);
    serve_connections(&listener, token, server);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn governor_disabled_admits_everything() {
        let g = Governor::unlimited();
        for _ in 0..1000 {
            assert!(g.admit(7));
        }
    }

    #[test]
    fn governor_zero_burst_sheds_everything() {
        // A configured capacity of zero is a closed valve, not the old
        // "0 disables admission control" footgun: even with a generous
        // refill rate the bucket can never reach one token.
        let g = Governor::new(1000.0, 0);
        for tenant in [0u32, 7] {
            for _ in 0..100 {
                assert!(!g.admit(tenant), "zero-burst governor must shed everything");
            }
        }
    }

    #[test]
    fn governor_without_refill_admits_exactly_burst() {
        let g = Governor::new(0.0, 5);
        // buckets are per tenant
        for tenant in [0u32, 1] {
            for i in 0..5 {
                assert!(g.admit(tenant), "request {i} within burst must be admitted");
            }
            for _ in 0..10 {
                assert!(!g.admit(tenant), "past burst with no refill must shed");
            }
        }
    }

    #[test]
    fn governor_refills_over_time() {
        let g = Governor::new(1000.0, 2);
        assert!(g.admit(0));
        assert!(g.admit(0));
        // at 1000 tokens/sec a few ms is plenty for one token
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if g.admit(0) {
                break;
            }
            assert!(Instant::now() < deadline, "bucket never refilled");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn registry_config_defaults() {
        let d = RegistryConfig::default();
        assert_eq!(d.quota_burst, None, "admission control off by default");
        assert_eq!(d.shadow_sample, 1, "shadow everything by default");
        assert_eq!(d.quota_rate, 0.0);
    }
}
