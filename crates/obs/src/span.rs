//! Hierarchical timing spans.
//!
//! [`span`] opens a timed region; dropping the returned guard closes it,
//! appending one `span` event to the sink and folding the duration into
//! the histogram `span.<name>`. Spans nest per thread: the event's
//! `path` joins every open span on the current thread with `/`, so
//! `trainer.fit/trainer.epoch/trainer.batch` reads as a call stack.
//! Worker threads start their own root — a span opened inside a pool
//! task is rooted at that task, which is the honest picture of where
//! the time was spent.
//!
//! When telemetry is disabled the guard is a no-op: construction costs
//! one atomic load and drop costs a `None` check.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span; the region ends when this guard drops.
#[must_use = "a span measures until dropped — binding it to _ closes it immediately"]
pub struct Span {
    data: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    path: String,
    start: Instant,
    start_ns: u64,
}

/// Open the span `name` on the current thread (no-op when telemetry is
/// disabled).
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { data: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    Span { data: Some(SpanData { name, path, start: Instant::now(), start_ns: crate::clock_ns() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        let dur_ns = data.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&data.name), "span guards dropped out of order");
            stack.pop();
        });
        crate::registry::histogram(&format!("span.{}", data.name)).record(dur_ns);
        let thread = std::thread::current().name().unwrap_or("unnamed").to_owned();
        crate::emit(
            &crate::Event::new("span", data.name)
                .str("path", data.path)
                .u64("start_ns", data.start_ns)
                .u64("dur_ns", dur_ns)
                .str("thread", thread),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_do_not_touch_the_stack() {
        let _guard = crate::test_guard();
        if crate::enabled() {
            return; // someone ran the suite with KGAG_TELEMETRY=1
        }
        let outer = span("outer");
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
        drop(outer);
    }
}
