//! The process-wide metric registry: counters, gauges and histograms.
//!
//! Metrics are interned by name — [`counter`]/[`gauge`]/[`histogram`]
//! return an `Arc` handle to the one instance with that name, creating
//! it on first use. Hot call sites cache the handle in a `OnceLock` so
//! the intern lock is taken once per process, not per event.
//!
//! All metric state is atomic and safe from pool worker threads.
//! Counters and gauges are plain lock-free atomics; histograms guard
//! their multi-word state with a seqlock (recorders serialize among
//! themselves with a brief spin, readers retry instead of blocking) so
//! a [`HistogramSnapshot`] is always one coherent point in time —
//! `sum`/`count`/`min`/`max` never mix observations. Values accumulate
//! for the life of the process; [`snapshot`] renders the current totals
//! as one [`Event`] per metric (in registration order, so streams diff
//! cleanly), which is what [`crate::flush`] appends to the JSONL sink.

use crate::event::Event;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the count.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float value (stored as bits, so updates are atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` atomically — the level-tracking
    /// primitive (queue depths, in-flight request counts) where
    /// concurrent writers would race a read-modify-`set`.
    pub fn add(&self, delta: f64) {
        let _ = self.bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + delta).to_bits())
        });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero. The top bucket is open-ended,
/// covering everything from ~9 minutes (in nanoseconds) up.
pub const HIST_BUCKETS: usize = 40;

/// A log2-bucketed histogram (nanosecond durations, sizes).
///
/// Recording and reading are coordinated by a seqlock (`seq` is odd
/// while a recorder is mid-update): recorders serialize among
/// themselves with a short CAS spin — never an OS block — and readers
/// retry until they observe a quiescent, unchanged sequence. Every
/// accessor goes through [`Histogram::snap`], so derived values like
/// [`mean`](Histogram::mean) and the JSONL emitter's
/// `sum`/`count`/`min`/`max` row always come from one coherent state,
/// not a torn mix of loads interleaved with concurrent `record`s.
#[derive(Debug)]
pub struct Histogram {
    /// Seqlock generation: even = quiescent, odd = a write in flight.
    seq: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            seq: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// One coherent point-in-time copy of a [`Histogram`]'s state. All
/// fields were read under the same seqlock generation, so invariants
/// across them hold: `sum` is exactly the sum of the `count`
/// observations counted, and the buckets total `count`.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all observations (0 when empty). Exact — computed from
    /// the sum/count pair, not the log2 buckets.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 when
    /// empty). Log2 buckets make this an order-of-magnitude estimate,
    /// which is all the overhead dashboards need.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper(idx);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        let idx = if v == 0 { 0 } else { (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1) };
        // Seqlock writer: claim the generation (even -> odd). Recorders
        // spin against each other here; the critical section below is a
        // handful of relaxed stores, so contention is brief and there
        // is no OS-level blocking on the hot path.
        let mut s = self.seq.load(Ordering::Relaxed) & !1;
        while let Err(cur) =
            self.seq.compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
        {
            s = cur & !1;
            std::hint::spin_loop();
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    /// A coherent snapshot of the whole histogram — the seqlock reader.
    /// Retries while a `record` is in flight or raced the reads; never
    /// blocks recorders.
    pub fn snap(&self) -> HistogramSnapshot {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snapshot = HistogramSnapshot {
                count: self.count.load(Ordering::Relaxed),
                sum: self.sum.load(Ordering::Relaxed),
                min: self.min.load(Ordering::Relaxed),
                max: self.max.load(Ordering::Relaxed),
                buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return snapshot;
            }
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.snap().count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.snap().sum
    }

    /// Smallest observation recorded so far, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.snap().min()
    }

    /// Largest observation recorded so far, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.snap().max()
    }

    /// Mean of all observations (0 when empty), from one coherent
    /// snapshot.
    pub fn mean(&self) -> f64 {
        self.snap().mean()
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 when
    /// empty), from one coherent snapshot.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        self.snap().quantile_upper(q)
    }
}

fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        (1u64 << idx) - 1
    }
}

// ----------------------------------------------------------------------
// Interning
// ----------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn intern<T: Default>(table: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut entries = table.lock().unwrap();
    if let Some((_, v)) = entries.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    entries.push((name.to_owned(), Arc::clone(&v)));
    v
}

/// The counter named `name` (created on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    intern(&registry().counters, name)
}

/// The gauge named `name` (created on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    intern(&registry().gauges, name)
}

/// The histogram named `name` (created on first use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    intern(&registry().histograms, name)
}

/// Render every registered metric's current totals as events, in
/// registration order: `counter` then `gauge` then `hist` records.
pub fn snapshot() -> Vec<Event> {
    let reg = registry();
    let mut out = Vec::new();
    for (name, c) in reg.counters.lock().unwrap().iter() {
        out.push(Event::new("counter", name.clone()).u64("value", c.get()));
    }
    for (name, g) in reg.gauges.lock().unwrap().iter() {
        out.push(Event::new("gauge", name.clone()).f64("value", g.get()));
    }
    for (name, h) in reg.histograms.lock().unwrap().iter() {
        // One coherent snapshot per histogram: every field of the
        // emitted record describes the same point in time even while
        // recorders are running.
        let snap = h.snap();
        out.push(
            Event::new("hist", name.clone())
                .u64("count", snap.count)
                .u64("sum", snap.sum)
                .u64("min", snap.min().unwrap_or(0))
                .u64("max", snap.max().unwrap_or(0))
                .u64("p50", snap.quantile_upper(0.50))
                .u64("p90", snap.quantile_upper(0.90))
                .u64("p99", snap.quantile_upper(0.99)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_instance() {
        let a = counter("test.intern");
        let b = counter("test.intern");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = gauge("test.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn gauge_add_accumulates_deltas_across_threads() {
        let g = gauge("test.gauge.add");
        g.set(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        g.add(1.0);
                        g.add(-0.5);
                    }
                });
            }
        });
        assert_eq!(g.get(), 500.0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        for v in [10u64, 20, 60] {
            h.record(v);
        }
        assert_eq!(h.mean(), 30.0);
    }

    #[test]
    fn histogram_buckets_cover_magnitudes() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        // p50 of 7 obs = 4th smallest (3) -> bucket [2,4) upper bound 3
        assert_eq!(h.quantile_upper(0.5), 3);
        assert!(h.quantile_upper(0.99) >= 1_000_000);
    }

    #[test]
    fn histogram_snapshots_are_coherent_under_concurrent_recording() {
        // Every recorder writes the constant 10, so any coherent state
        // satisfies sum == 10 * count and the buckets total count. The
        // old per-field relaxed loads could interleave with a record()
        // between reading count and sum and break both invariants.
        let h = Histogram::default();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..5_000 {
                        h.record(10);
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        let snap = h.snap();
                        assert_eq!(snap.sum, 10 * snap.count, "snapshot tore sum against count");
                        assert_eq!(snap.min().unwrap_or(10), 10);
                        assert_eq!(snap.max().unwrap_or(10), 10);
                        assert_eq!(
                            snap.buckets.iter().sum::<u64>(),
                            snap.count,
                            "snapshot tore buckets against count"
                        );
                    }
                });
            }
            // give the readers a window that overlaps the recorders,
            // then flag them down so the scope can join everything
            std::thread::sleep(std::time::Duration::from_millis(20));
            done.store(true, Ordering::Relaxed);
        });
        let snap = h.snap();
        assert_eq!(snap.count, 4 * 5_000);
        assert_eq!(snap.sum, 10 * snap.count);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_upper(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(7);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        counter("test.snap.counter").add(5);
        gauge("test.snap.gauge").set(0.5);
        histogram("test.snap.hist").record(100);
        let events = snapshot();
        for kind in ["counter", "gauge", "hist"] {
            assert!(
                events.iter().any(|e| e.kind() == kind && e.to_jsonl().contains("test.snap")),
                "missing {kind} in snapshot"
            );
        }
    }
}
