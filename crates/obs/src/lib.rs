//! # kgag-obs
//!
//! Std-only observability for the KGAG workspace: hierarchical timing
//! [`span`]s, [`counter`]/[`gauge`]/[`histogram`] metrics behind a
//! process-wide registry, and a JSONL event sink. The design contract
//! (DESIGN.md §10):
//!
//! * **Passive.** Telemetry reads clocks and writes a file; it never
//!   touches an RNG, a parameter or a score. Model outputs are
//!   bit-identical with telemetry on or off — enforced end to end by
//!   `crates/core/tests/determinism.rs` and the `telemetry_check` CI
//!   stage.
//! * **Near-zero cost when disabled.** Every entry point starts with
//!   [`enabled`] — two relaxed atomic loads — and returns immediately
//!   when telemetry is off. No allocation, no lock, no clock read.
//! * **Self-describing output.** One JSON object per line, a closed set
//!   of `ev` kinds (`meta`, `span`, `point`, `counter`, `gauge`,
//!   `hist`), parseable by `kgag_testkit::json::Json::parse` — which is
//!   exactly how CI validates emitted streams.
//!
//! Activation: set `KGAG_TELEMETRY=1` (path from `KGAG_TELEMETRY_PATH`,
//! default `telemetry.jsonl`), or call [`enable_to`]/[`disable`]
//! programmatically (what the determinism tests do to compare on/off in
//! one process). Metric totals accumulate for the life of the process
//! and are appended to the sink by [`flush`] (also called by
//! [`disable`]).

pub mod event;
pub mod registry;
pub mod span;

pub use event::{Event, Value};
pub use registry::{counter, gauge, histogram, Counter, Gauge, Histogram, HistogramSnapshot};
pub use span::{span, Span};

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

static INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

struct Sink {
    out: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
}

/// Nanoseconds since the process's telemetry clock epoch (first use).
/// Only meaningful relative to other `clock_ns` readings in the same
/// process — it orders span starts, nothing more.
pub fn clock_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Is telemetry on? The first call resolves `KGAG_TELEMETRY` /
/// `KGAG_TELEMETRY_PATH` from the environment; after that this is two
/// relaxed atomic loads — cheap enough for the pool's per-scope checks.
pub fn enabled() -> bool {
    INIT.call_once(init_from_env);
    ENABLED.load(Ordering::Relaxed)
}

fn init_from_env() {
    let on = std::env::var("KGAG_TELEMETRY")
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on" | "jsonl"))
        .unwrap_or(false);
    if !on {
        return;
    }
    let path = std::env::var("KGAG_TELEMETRY_PATH").unwrap_or_else(|_| "telemetry.jsonl".into());
    if let Err(e) = install_sink(path.as_ref()) {
        eprintln!("[kgag-obs] cannot open KGAG_TELEMETRY_PATH {path}: {e} — telemetry disabled");
    }
}

/// Enable telemetry programmatically, truncating/creating the JSONL file
/// at `path`. Claims environment initialisation, so a later [`enabled`]
/// never overrides the explicit choice. Used by tests and the
/// `telemetry_check` gate to compare on/off inside one process.
pub fn enable_to(path: &std::path::Path) -> std::io::Result<()> {
    INIT.call_once(|| {});
    install_sink(path)
}

fn install_sink(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    // the meta line is written directly rather than through `emit`:
    // env-var activation runs inside `INIT.call_once`, and `emit` calls
    // `enabled()` — a re-entrant `call_once` deadlocks
    let meta = Event::new("meta", "session")
        .str("version", env!("CARGO_PKG_VERSION"))
        .u64("pid", std::process::id() as u64)
        .u64("start_ns", clock_ns())
        .to_jsonl();
    let mut sink = SINK.lock().unwrap();
    let mut out = std::io::BufWriter::new(file);
    let _ = writeln!(out, "{meta}");
    let _ = out.flush();
    *sink = Some(Sink { out, path: path.to_path_buf() });
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Append one event to the sink (no-op when telemetry is off). Each
/// line is flushed through to the file immediately, so the stream is
/// valid JSONL even if the process aborts mid-run.
pub fn emit(event: &Event) {
    if !enabled() {
        return;
    }
    let line = event.to_jsonl();
    let mut sink = SINK.lock().unwrap();
    if let Some(s) = sink.as_mut() {
        // an unwritable sink (disk full, path removed) must never take
        // the training run down with it
        let _ = writeln!(s.out, "{line}");
        let _ = s.out.flush();
    }
}

/// Append a snapshot of every registered metric (cumulative totals) to
/// the sink. Idempotent; call at natural boundaries (end of training,
/// end of an evaluation pass).
pub fn flush() {
    if !enabled() {
        return;
    }
    for event in registry::snapshot() {
        emit(&event);
    }
}

/// Flush a final metric snapshot, close the sink and turn telemetry
/// off. Returns the path of the closed JSONL file, if any.
pub fn disable() -> Option<std::path::PathBuf> {
    if !enabled() {
        return None;
    }
    flush();
    let mut sink = SINK.lock().unwrap();
    ENABLED.store(false, Ordering::Relaxed);
    sink.take().map(|s| s.path)
}

/// Serialises tests that flip the process-wide telemetry state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: enable → spans/metrics/points → disable, then check
    /// the stream is valid JSONL (the dev-dependency on the testkit
    /// parser is the same validation CI runs).
    #[test]
    fn emitted_stream_is_valid_jsonl() {
        use kgag_testkit::json::Json;
        let _guard = crate::test_guard();
        let path = std::env::temp_dir().join(format!("kgag-obs-test-{}.jsonl", std::process::id()));
        enable_to(&path).expect("enable telemetry");
        {
            let _fit = span("test.outer");
            let _epoch = span("test.inner");
            counter("test.events").add(2);
            gauge("test.loss").set(0.25);
            histogram("test.ns").record(1234);
            emit(&Event::new("point", "test.point").u64("epoch", 1).f64("loss", 0.5));
        }
        let closed = disable().expect("sink path");
        assert_eq!(closed, path);
        assert!(!enabled(), "disable must turn telemetry off");

        let text = std::fs::read_to_string(&path).unwrap();
        let mut kinds = std::collections::HashSet::new();
        for (i, line) in text.lines().enumerate() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}\n{line}"));
            let ev = v.get("ev").and_then(Json::as_str).expect("every event has ev");
            assert!(
                ["meta", "span", "point", "counter", "gauge", "hist"].contains(&ev),
                "unknown ev kind {ev}"
            );
            assert!(v.get("name").and_then(Json::as_str).is_some(), "line {i} missing name");
            kinds.insert(ev.to_owned());
        }
        for expected in ["meta", "span", "point", "counter", "gauge", "hist"] {
            assert!(kinds.contains(expected), "no {expected} event in stream");
        }
        // nested span carries the hierarchical path
        let inner =
            text.lines().find(|l| l.contains("\"test.inner\"")).expect("inner span event present");
        let v = Json::parse(inner).unwrap();
        assert_eq!(v.get("path").and_then(Json::as_str), Some("test.outer/test.inner"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_emit_and_flush_are_noops() {
        let _guard = crate::test_guard();
        if enabled() {
            return; // suite running with KGAG_TELEMETRY=1
        }
        emit(&Event::new("point", "ignored"));
        flush();
        assert!(disable().is_none());
    }
}
