//! The telemetry event model and its JSONL encoding.
//!
//! Every telemetry record is one [`Event`]: an event kind (`ev`), a
//! metric/span name, and a flat list of typed fields. [`Event::to_jsonl`]
//! renders it as a single standards-conforming JSON object on one line —
//! the format `kgag_testkit::json::Json::parse` reads back, which is how
//! the CI telemetry gate validates emitted streams without this crate
//! depending on the testkit at build time.
//!
//! The encoder mirrors the testkit writer's conventions so values
//! round-trip with identical typing: integral floats get a `.0` suffix,
//! non-finite floats become `null`, control characters are `\u`-escaped.

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, nanosecond durations, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (losses, ratios). Non-finite values encode as `null`.
    F64(f64),
    /// String (thread names, labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

/// One telemetry record.
///
/// The `ev` kind is one of the schema's closed set (`meta`, `span`,
/// `point`, `counter`, `gauge`, `hist`) — see DESIGN.md §10 for the
/// per-kind required fields.
#[derive(Clone, Debug)]
pub struct Event {
    ev: &'static str,
    name: String,
    fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event of kind `ev` for the metric/span `name`.
    pub fn new(ev: &'static str, name: impl Into<String>) -> Self {
        Event { ev, name: name.into(), fields: Vec::new() }
    }

    /// Append a field (builder style; insertion order is preserved).
    pub fn field(mut self, key: impl Into<String>, value: Value) -> Self {
        self.fields.push((key.into(), value));
        self
    }

    /// Append a `u64` field.
    pub fn u64(self, key: impl Into<String>, value: u64) -> Self {
        self.field(key, Value::U64(value))
    }

    /// Append an `f64` field.
    pub fn f64(self, key: impl Into<String>, value: f64) -> Self {
        self.field(key, Value::F64(value))
    }

    /// Append a string field.
    pub fn str(self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.field(key, Value::Str(value.into()))
    }

    /// The event kind.
    pub fn kind(&self) -> &'static str {
        self.ev
    }

    /// Render as one JSON object, no trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"ev\": ");
        write_str(&mut out, self.ev);
        out.push_str(", \"name\": ");
        write_str(&mut out, &self.name);
        for (key, value) in &self.fields {
            out.push_str(", ");
            write_str(&mut out, key);
            out.push_str(": ");
            write_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                out.push_str("null");
            } else if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object_in_insertion_order() {
        let e = Event::new("point", "trainer.epoch")
            .u64("epoch", 3)
            .f64("group_loss", 0.5)
            .f64("whole", 2.0)
            .str("thread", "main")
            .field("ok", Value::Bool(true))
            .field("neg", Value::I64(-4));
        assert_eq!(
            e.to_jsonl(),
            "{\"ev\": \"point\", \"name\": \"trainer.epoch\", \"epoch\": 3, \
             \"group_loss\": 0.5, \"whole\": 2.0, \"thread\": \"main\", \
             \"ok\": true, \"neg\": -4}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("gauge", "x").f64("v", f64::NAN).f64("w", f64::INFINITY);
        assert_eq!(e.to_jsonl(), "{\"ev\": \"gauge\", \"name\": \"x\", \"v\": null, \"w\": null}");
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("meta", "we\"ird\n\u{1}");
        assert_eq!(e.to_jsonl(), "{\"ev\": \"meta\", \"name\": \"we\\\"ird\\n\\u0001\"}");
    }
}
