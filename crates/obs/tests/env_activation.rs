//! Environment-variable activation, exercised in a clean process (an
//! integration-test binary owns its own `INIT` state — the unit tests
//! can't reach this path because they claim initialisation through
//! `enable_to`).
//!
//! Regression: `install_sink` once wrote the session meta line through
//! `emit`, whose `enabled()` check re-entered `INIT.call_once` from
//! inside `init_from_env` — a re-entrant `Once` deadlocks, hanging any
//! process launched with `KGAG_TELEMETRY=1` at its first instrumented
//! call. The init runs on a watchdog thread here so a regression fails
//! the test instead of wedging the suite.

use kgag_testkit::json::Json;
use std::sync::mpsc;
use std::time::Duration;

#[test]
fn env_var_activation_initialises_without_deadlock() {
    let path = std::env::temp_dir().join(format!("kgag-obs-env-{}.jsonl", std::process::id()));
    std::env::set_var("KGAG_TELEMETRY", "1");
    std::env::set_var("KGAG_TELEMETRY_PATH", &path);

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(kgag_obs::enabled());
    });
    let on = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("enabled() deadlocked during KGAG_TELEMETRY initialisation");
    assert!(on, "KGAG_TELEMETRY=1 must enable telemetry");

    // the sink is live: the session meta line is already on disk, and
    // explicit events land after it
    kgag_obs::emit(&kgag_obs::Event::new("point", "env.test").u64("epoch", 0));
    let closed = kgag_obs::disable().expect("disable returns the sink path");
    assert_eq!(closed, path);

    let text = std::fs::read_to_string(&path).expect("stream file exists");
    let first = Json::parse(text.lines().next().expect("stream is not empty")).expect("valid JSON");
    assert_eq!(first.get("ev").and_then(Json::as_str), Some("meta"));
    assert_eq!(first.get("name").and_then(Json::as_str), Some("session"));
    assert!(text.lines().any(|l| l.contains("env.test")), "emitted point missing");
    let _ = std::fs::remove_file(&path);
}
