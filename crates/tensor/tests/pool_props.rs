//! Property-based tests of the deterministic thread pool: every
//! data-parallel primitive must produce output bit-identical to its
//! sequential reference for random sizes, chunk splits and thread
//! counts, and a panicking task must poison the scope (re-throw at the
//! caller) rather than deadlock or kill sibling tasks.

use kgag_tensor::pool::{self, par_chunks_mut, par_map, scope, with_threads};
use kgag_tensor::rng::SplitMix64;
use kgag_tensor::Tensor;
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{f32_in, u64_in, usize_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn par_chunks_mut_equals_sequential_reference() {
    // random data length, chunk length and thread count; the chunk
    // kernel mixes the chunk index and the element offset so any slot
    // mix-up or double-write is visible
    let gen = (usize_in(1..2000), usize_in(1..300), usize_in(1..9), u64_in(0..u64::MAX));
    Runner::new("pool-par-chunks-matches-seq").cases(96).run(
        &gen,
        |&(len, chunk_len, threads, seed)| {
            let mut rng = SplitMix64::new(seed);
            let base: Vec<f32> = (0..len).map(|_| rng.next_f32()).collect();
            let kernel = |ci: usize, chunk: &mut [f32]| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = *x * (ci as f32 + 1.0) + j as f32;
                }
            };
            // sequential reference at 1 thread
            let mut expect = base.clone();
            with_threads(1, || par_chunks_mut(&mut expect, chunk_len, kernel));
            let mut got = base.clone();
            with_threads(threads, || par_chunks_mut(&mut got, chunk_len, kernel));
            prop_assert_eq!(got, expect, "len {len} chunk {chunk_len} threads {threads}");
            Ok(())
        },
    );
}

#[test]
fn par_map_equals_sequential_reference() {
    let gen = (vec_of(f32_in(-10.0..10.0), 0..600), usize_in(1..9));
    Runner::new("pool-par-map-matches-seq").cases(96).run(&gen, |(items, threads)| {
        let f = |i: usize, &x: &f32| (i as f32).mul_add(0.5, x * x);
        let expect: Vec<f32> = with_threads(1, || par_map(items, f));
        let got: Vec<f32> = with_threads(*threads, || par_map(items, f));
        prop_assert_eq!(&got, &expect, "threads {threads}: {got:?} vs {expect:?}");
        Ok(())
    });
}

#[test]
fn matmul_is_bit_identical_at_any_thread_count() {
    // exercises the real hot-path kernels through the pool: sizes above
    // and below the parallel threshold, arbitrary thread counts
    let gen =
        (usize_in(1..48), usize_in(1..48), usize_in(1..48), usize_in(2..9), u64_in(0..u64::MAX));
    Runner::new("pool-matmul-bit-identical").cases(64).run(&gen, |&(m, k, n, threads, seed)| {
        let mut rng = SplitMix64::new(seed);
        let a = Tensor::from_vec(m, k, (0..m * k).map(|_| rng.next_f32() - 0.5).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|_| rng.next_f32() - 0.5).collect());
        let seq = with_threads(1, || (a.matmul(&b), a.matmul_tn(&a), b.matmul_nt(&b)));
        let par = with_threads(threads, || (a.matmul(&b), a.matmul_tn(&a), b.matmul_nt(&b)));
        prop_assert_eq!(seq.0.data(), par.0.data(), "matmul diverged at {threads} threads");
        prop_assert_eq!(seq.1.data(), par.1.data(), "matmul_tn diverged at {threads} threads");
        prop_assert_eq!(seq.2.data(), par.2.data(), "matmul_nt diverged at {threads} threads");
        Ok(())
    });
}

#[test]
fn scope_runs_every_task_exactly_once() {
    let gen = (usize_in(0..100), usize_in(1..9));
    Runner::new("pool-scope-task-coverage").cases(64).run(&gen, |&(tasks, threads)| {
        let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
        with_threads(threads, || {
            scope(|s| {
                for h in &hits {
                    s.spawn(|| {
                        h.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        for (i, h) in hits.iter().enumerate() {
            let n = h.load(Ordering::SeqCst);
            prop_assert!(n == 1, "task {i} ran {n} times");
        }
        Ok(())
    });
}

#[test]
fn panicking_task_poisons_scope_and_siblings_still_run() {
    let survivors = Arc::new(AtomicUsize::new(0));
    let sv = Arc::clone(&survivors);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        with_threads(4, || {
            scope(|s| {
                for i in 0..24 {
                    let sv = Arc::clone(&sv);
                    s.spawn(move || {
                        if i == 11 {
                            panic!("poisoned task {i}");
                        }
                        sv.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
    }));
    let err = outcome.expect_err("the task panic must re-throw at the caller");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("poisoned task 11"), "unexpected panic payload: {msg}");
    assert_eq!(survivors.load(Ordering::SeqCst), 23, "sibling tasks must complete");
}

#[test]
fn num_threads_honours_override_and_cap() {
    assert!(pool::num_threads() >= 1);
    with_threads(5, || assert_eq!(pool::num_threads(), 5));
    with_threads(100_000, || assert!(pool::num_threads() <= pool::MAX_THREADS));
}
