//! Property-based tests of the autodiff tape: analytic gradients must
//! match central-difference numeric gradients for randomly generated
//! computation graphs, and structural invariants must hold for all
//! shapes.

use kgag_tensor::{init, ParamId, ParamStore, Tape, Tensor};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{boolean, choice, f32_in, u64_in, usize_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// Numeric gradient of `f` w.r.t. `pid` via central differences.
fn numeric_grad(store: &mut ParamStore, pid: ParamId, f: &dyn Fn(&ParamStore) -> f32) -> Tensor {
    let eps = 1e-3f32;
    let shape = store.shape(pid);
    let mut out = Tensor::zeros(shape.rows, shape.cols);
    for i in 0..shape.len() {
        let orig = store.value(pid).data()[i];
        store.value_mut(pid).data_mut()[i] = orig + eps;
        let up = f(store);
        store.value_mut(pid).data_mut()[i] = orig - eps;
        let down = f(store);
        store.value_mut(pid).data_mut()[i] = orig;
        out.data_mut()[i] = (up - down) / (2.0 * eps);
    }
    out
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> Result<(), String> {
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        if (x - y).abs() > tol * (1.0 + x.abs().max(y.abs())) {
            return Err(format!("element {i}: analytic {x} vs numeric {y}"));
        }
    }
    Ok(())
}

/// Ops chosen per pipeline stage of the random graph.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UnaryOp {
    Sigmoid,
    Relu,
    Tanh,
    Scale,
    AddScalar,
}

const UNARY_OPS: [UnaryOp; 5] =
    [UnaryOp::Sigmoid, UnaryOp::Relu, UnaryOp::Tanh, UnaryOp::Scale, UnaryOp::AddScalar];

fn apply(tape: &mut Tape<'_>, x: kgag_tensor::NodeId, op: UnaryOp) -> kgag_tensor::NodeId {
    match op {
        UnaryOp::Sigmoid => tape.sigmoid(x),
        UnaryOp::Relu => tape.relu(x),
        UnaryOp::Tanh => tape.tanh(x),
        UnaryOp::Scale => tape.scale(x, 0.7),
        UnaryOp::AddScalar => tape.add_scalar(x, 0.3),
    }
}

/// matmul → unary chain → reduction: analytic == numeric.
#[test]
fn random_chain_gradients_match() {
    let gen = (
        u64_in(0..1000),
        usize_in(1..5),
        usize_in(1..5),
        usize_in(1..4),
        vec_of(choice(&UNARY_OPS), 0..3),
        boolean(),
    );
    Runner::new("random_chain_gradients_match").cases(64).run(
        &gen,
        |&(seed, rows, inner, cols, ref ops, use_mean)| {
            let mut store = ParamStore::new();
            let a = store.register("a", init::uniform(rows, inner, 0.8, seed));
            let b = store.register("b", init::uniform(inner, cols, 0.8, seed ^ 1));
            let ops2 = ops.clone();
            let run = move |s: &ParamStore| -> f32 {
                let mut tape = Tape::new(s);
                let an = tape.param(a);
                let bn = tape.param(b);
                let mut x = tape.matmul(an, bn);
                for &op in &ops2 {
                    x = apply(&mut tape, x, op);
                }
                let l = if use_mean { tape.mean_all(x) } else { tape.sum_all(x) };
                tape.value(l).item()
            };
            let mut tape = Tape::new(&store);
            let an = tape.param(a);
            let bn = tape.param(b);
            let mut x = tape.matmul(an, bn);
            for &op in ops {
                x = apply(&mut tape, x, op);
            }
            let l = if use_mean { tape.mean_all(x) } else { tape.sum_all(x) };
            let grads = tape.backward(l);
            // ReLU kinks can make numeric gradients disagree at the boundary;
            // tolerance is loose but catches sign/shape/scale bugs.
            if let Some(g) = grads.get(a) {
                let n = numeric_grad(&mut store.clone(), a, &run);
                prop_assert!(close(g, &n, 0.05).is_ok(), "dA: {:?}", close(g, &n, 0.05));
            }
            if let Some(g) = grads.get(b) {
                let n = numeric_grad(&mut store.clone(), b, &run);
                prop_assert!(close(g, &n, 0.05).is_ok(), "dB: {:?}", close(g, &n, 0.05));
            }
            Ok(())
        },
    );
}

/// Grouped attention pipeline gradients match numerically.
#[test]
fn grouped_pipeline_gradients_match() {
    let gen = (u64_in(0..500), usize_in(1..4), usize_in(2..5), usize_in(1..5));
    Runner::new("grouped_pipeline_gradients_match").cases(64).run(
        &gen,
        |&(seed, blocks, group, d)| {
            let mut store = ParamStore::new();
            let logits = store.register("logits", init::uniform(blocks * group, 1, 1.0, seed));
            let values = store.register("values", init::uniform(blocks * group, d, 1.0, seed ^ 7));
            let run = move |s: &ParamStore| -> f32 {
                let mut tape = Tape::new(s);
                let l = tape.param(logits);
                let v = tape.param(values);
                let w = tape.softmax_groups(l, group);
                let g = tape.group_weighted_sum(w, v, group);
                let sq = tape.mul(g, g);
                let out = tape.mean_all(sq);
                tape.value(out).item()
            };
            let mut tape = Tape::new(&store);
            let l = tape.param(logits);
            let v = tape.param(values);
            let w = tape.softmax_groups(l, group);
            let g = tape.group_weighted_sum(w, v, group);
            let sq = tape.mul(g, g);
            let out = tape.mean_all(sq);
            let grads = tape.backward(out);
            let nl = numeric_grad(&mut store.clone(), logits, &run);
            let nv = numeric_grad(&mut store.clone(), values, &run);
            prop_assert!(close(grads.get(logits).unwrap(), &nl, 0.05).is_ok());
            prop_assert!(close(grads.get(values).unwrap(), &nv, 0.05).is_ok());
            Ok(())
        },
    );
}

/// softmax_groups always produces per-block distributions.
#[test]
fn softmax_groups_is_distribution() {
    let gen = (vec_of(f32_in(-20.0..20.0), 2..40), usize_in(1..6));
    Runner::new("softmax_groups_is_distribution").cases(64).run(&gen, |(data, group)| {
        let group = *group;
        let n = (data.len() / group).max(1) * group;
        let data = &data[..n.min(data.len())];
        if data.len() % group != 0 {
            return Ok(());
        }
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::from_vec(data.len(), 1, data.to_vec()));
        let s = tape.softmax_groups(x, group);
        for chunk in tape.value(s).data().chunks(group) {
            let sum: f32 = chunk.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "block sums to {sum}");
            prop_assert!(chunk.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        Ok(())
    });
}

/// peer_concat is a pure permutation of the input: the multiset of
/// values in each output block equals (group-1) copies of the input
/// block values.
#[test]
fn peer_concat_preserves_values() {
    let gen = (u64_in(0..1000), usize_in(1..4), usize_in(2..5), usize_in(1..4));
    Runner::new("peer_concat_preserves_values").cases(64).run(&gen, |&(seed, blocks, group, d)| {
        let input = init::uniform(blocks * group, d, 1.0, seed);
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(input.clone());
        let pc = tape.peer_concat(x, group);
        let out = tape.value(pc);
        prop_assert_eq!(out.rows(), blocks * group);
        prop_assert_eq!(out.cols(), (group - 1) * d);
        // total sums: each input row appears in exactly group-1 outputs
        let in_sum: f32 = input.data().iter().sum();
        let out_sum: f32 = out.data().iter().sum();
        prop_assert!((out_sum - in_sum * (group - 1) as f32).abs() < 1e-3 * (1.0 + in_sum.abs()));
        Ok(())
    });
}

/// repeat_rows then group_mean is the identity.
#[test]
fn repeat_then_mean_is_identity() {
    let gen = (u64_in(0..1000), usize_in(1..6), usize_in(1..5), usize_in(1..5));
    Runner::new("repeat_then_mean_is_identity").cases(64).run(&gen, |&(seed, rows, d, times)| {
        let input = init::uniform(rows, d, 1.0, seed);
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(input.clone());
        let r = tape.repeat_rows(x, times);
        let m = tape.group_mean(r, times);
        for (a, b) in tape.value(m).data().iter().zip(input.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        Ok(())
    });
}
