//! Checkpoint round-trip properties: save → load must be *bit-identical*
//! for parameter values and for the Adam moment state, across random
//! stores that include empty and otherwise degenerate shapes (0×n, n×0,
//! 0×0, 1×1). Bit-identity — not approximate equality — is the contract
//! the golden-file gate and `--checkpoint` resume rely on, so values are
//! compared through their bit patterns and the generated data includes
//! subnormals and signed zeros.

use kgag_tensor::checkpoint::{
    load, load_with_optimizer, save, save_with_optimizer, CheckpointError,
};
use kgag_tensor::optim::{Adam, Optimizer};
use kgag_tensor::params::Gradients;
use kgag_tensor::{ParamStore, Tensor};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u64_in, usize_in};
use kgag_testkit::prop_assert;
use kgag_testkit::SplitMix64;

/// A value whose low bits exercise the full f32 range: mostly ordinary
/// magnitudes, plus signed zeros and subnormals every few draws.
fn random_value(rng: &mut SplitMix64) -> f32 {
    match rng.next_u64() % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => f32::from_bits((rng.next_u64() % 0x7f_ffff) as u32 + 1), // subnormal
        _ => ((rng.next_u64() % 2_000_001) as f32 / 1_000_000.0 - 1.0) * 3.0,
    }
}

/// Random store with `count` parameters; shape list deliberately leads
/// with the degenerate cases so every multi-param store contains them.
fn random_store(seed: u64, count: usize) -> ParamStore {
    let shapes: [(usize, usize); 7] = [(0, 0), (0, 3), (3, 0), (1, 1), (2, 3), (5, 1), (4, 4)];
    let mut rng = SplitMix64::new(seed);
    let mut store = ParamStore::new();
    for i in 0..count {
        let (rows, cols) = shapes[i % shapes.len()];
        let data: Vec<f32> = (0..rows * cols).map(|_| random_value(&mut rng)).collect();
        store.register(&format!("p{i}"), Tensor::from_vec(rows, cols, data));
    }
    store
}

/// A fresh store with the same names and shapes but different values —
/// the "rebuilt from config" target that load() hydrates.
fn blank_like(store: &ParamStore) -> ParamStore {
    let mut fresh = ParamStore::new();
    for (_, name, value) in store.iter() {
        fresh.register(name, Tensor::full(value.rows(), value.cols(), 7.5));
    }
    fresh
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// Drive Adam over random parameter subsets so the exported state has a
/// mix of stepped and never-stepped parameters with differing t.
fn random_adam(store: &mut ParamStore, seed: u64, steps: usize) -> Adam {
    let mut opt = Adam::new(0.01);
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let ids: Vec<_> = store.iter().map(|(id, ..)| id).collect();
    for _ in 0..steps {
        let mut grads = Gradients::new();
        for &id in &ids {
            if rng.next_u64() % 2 == 0 {
                let shape = store.shape(id);
                let mut g = Vec::with_capacity(shape.len());
                for _ in 0..shape.len() {
                    g.push(random_value(&mut rng));
                }
                grads.accumulate(id, shape, |t| t.data_mut().copy_from_slice(&g));
            }
        }
        opt.step(store, &grads);
    }
    opt
}

/// v1 round trip: every parameter value, including the degenerate
/// shapes, survives bit for bit.
#[test]
fn params_round_trip_bit_identically() {
    let gen = (u64_in(0..100_000), usize_in(0..12));
    Runner::new("params_round_trip_bit_identically").cases(64).run(&gen, |&(seed, count)| {
        let store = random_store(seed, count);
        let bytes = save(&store);
        let mut fresh = blank_like(&store);
        let restored = load(&mut fresh, &bytes).map_err(|e| e.to_string())?;
        prop_assert!(restored == count, "restored {restored} of {count}");
        for (_, name, value) in store.iter() {
            let got = fresh.value(fresh.id(name).unwrap());
            prop_assert!(bits(value) == bits(got), "param {name} diverged");
        }
        Ok(())
    });
}

/// v2 round trip: parameters *and* every Adam entry (t, m, v) survive
/// bit for bit, and never-stepped parameters stay absent from the state.
#[test]
fn optimizer_state_round_trips_bit_identically() {
    let gen = (u64_in(0..100_000), usize_in(1..10), usize_in(0..6));
    Runner::new("optimizer_state_round_trips_bit_identically").cases(64).run(
        &gen,
        |&(seed, count, steps)| {
            let mut store = random_store(seed, count);
            let opt = random_adam(&mut store, seed, steps);
            let bytes = save_with_optimizer(&store, &opt);

            let mut fresh = blank_like(&store);
            let mut fresh_opt = Adam::new(0.01);
            load_with_optimizer(&mut fresh, &mut fresh_opt, &bytes).map_err(|e| e.to_string())?;

            for (_, name, value) in store.iter() {
                let got = fresh.value(fresh.id(name).unwrap());
                prop_assert!(bits(value) == bits(got), "param {name} diverged");
            }
            let want = opt.export_state();
            let got = fresh_opt.export_state();
            prop_assert!(want.len() == got.len(), "state count {} vs {}", want.len(), got.len());
            for ((wid, wt, wm, wv), (gid, gt, gm, gv)) in want.iter().zip(&got) {
                prop_assert!(wid == gid && wt == gt, "entry id/t diverged");
                prop_assert!(bits(wm) == bits(gm), "first moment diverged for {wid:?}");
                prop_assert!(bits(wv) == bits(gv), "second moment diverged for {wid:?}");
            }
            Ok(())
        },
    );
}

/// The property the v2 format exists for: pause/resume produces the
/// same trajectory as training straight through. k steps + save + load
/// + n more steps must equal k+n uninterrupted steps bit for bit.
#[test]
fn resume_matches_uninterrupted_training() {
    let gen = (u64_in(0..100_000), usize_in(1..8), usize_in(1..4), usize_in(1..4));
    Runner::new("resume_matches_uninterrupted_training").cases(64).run(
        &gen,
        |&(seed, count, k, n)| {
            // the same deterministic gradient schedule, applied two ways
            let schedule = |store: &mut ParamStore, opt: &mut Adam, lo: usize, hi: usize| {
                let ids: Vec<_> = store.iter().map(|(id, ..)| id).collect();
                for step in lo..hi {
                    let mut rng = SplitMix64::new(seed ^ (step as u64) << 8);
                    let mut grads = Gradients::new();
                    for &id in &ids {
                        if rng.next_u64() % 3 != 0 {
                            let shape = store.shape(id);
                            let mut g = Vec::with_capacity(shape.len());
                            for _ in 0..shape.len() {
                                g.push(random_value(&mut rng));
                            }
                            grads.accumulate(id, shape, |t| t.data_mut().copy_from_slice(&g));
                        }
                    }
                    opt.step(store, &grads);
                }
            };

            let mut straight = random_store(seed, count);
            let mut straight_opt = Adam::new(0.01);
            schedule(&mut straight, &mut straight_opt, 0, k + n);

            let mut paused = random_store(seed, count);
            let mut paused_opt = Adam::new(0.01);
            schedule(&mut paused, &mut paused_opt, 0, k);
            let bytes = save_with_optimizer(&paused, &paused_opt);
            let mut resumed = blank_like(&paused);
            let mut resumed_opt = Adam::new(0.01);
            load_with_optimizer(&mut resumed, &mut resumed_opt, &bytes)
                .map_err(|e| e.to_string())?;
            schedule(&mut resumed, &mut resumed_opt, k, k + n);

            for (_, name, value) in straight.iter() {
                let got = resumed.value(resumed.id(name).unwrap());
                prop_assert!(bits(value) == bits(got), "resumed param {name} diverged");
            }
            Ok(())
        },
    );
}

/// Version interop: plain [`load`] accepts a v2 file (ignoring the
/// moment section) and [`load_with_optimizer`] rejects a v1 file with
/// the dedicated error rather than misparsing.
#[test]
fn version_interop_is_explicit() {
    let mut store = random_store(3, 5);
    let opt = random_adam(&mut store, 3, 3);

    let v2 = save_with_optimizer(&store, &opt);
    let mut fresh = blank_like(&store);
    assert_eq!(load(&mut fresh, &v2), Ok(5), "plain load must accept v2");
    for (_, name, value) in store.iter() {
        assert_eq!(bits(value), bits(fresh.value(fresh.id(name).unwrap())), "param {name}");
    }

    let v1 = save(&store);
    let mut fresh = blank_like(&store);
    let mut fresh_opt = Adam::new(0.01);
    assert_eq!(
        load_with_optimizer(&mut fresh, &mut fresh_opt, &v1),
        Err(CheckpointError::NoOptimizerState)
    );
}

/// Truncating a v2 file anywhere inside the optimizer section is
/// detected, never silently accepted.
#[test]
fn truncated_optimizer_section_is_detected() {
    let mut store = random_store(9, 4);
    let opt = random_adam(&mut store, 9, 4);
    let bytes = save_with_optimizer(&store, &opt);
    let params_only = save(&store).len();
    for cut in [params_only + 1, params_only + 5, bytes.len() - 1] {
        let mut fresh = blank_like(&store);
        let mut fresh_opt = Adam::new(0.01);
        let err = load_with_optimizer(&mut fresh, &mut fresh_opt, &bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Truncated | CheckpointError::NoOptimizerState),
            "cut at {cut}: got {err:?}"
        );
    }
}
