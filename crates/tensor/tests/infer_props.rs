//! Property suites for the fused f32 inference kernels
//! (`kgag_tensor::infer`, DESIGN.md §14).
//!
//! Each fused kernel is compared against a naive f64 evaluation of the
//! same expression on random inputs. The bound is *relative*: for a
//! reduction of length `n` over values bounded by `m`, the accumulated
//! f32 rounding error is at most a small multiple of `n · m² · ε`, so
//! every assertion scales its tolerance by the reduction length and the
//! operand magnitude instead of hard-coding an absolute epsilon that
//! would go stale when test ranges change.
//!
//! The conversion suite covers the edge cases the sanitiser exists
//! for: subnormal flushing, overflow/NaN detection, exactness on
//! normals, and zeroed padding lanes.

use kgag_tensor::infer::{
    add_into, blocked_stride, dot_f32, flush_subnormal, gather_row_dot_rep, group_mean,
    group_weighted_sum, matmul2_bias_act, matmul_bias_act, residual_inplace, row_dot_rep_scaled,
    sanitize_dense, softmax_groups_inplace, Activation, BlockedTable, ConvertError, BLOCK_FLOATS,
};
use kgag_tensor::rng::SplitMix64;
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{f32_in, u64_in, usize_in};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// Per-element relative-error bound for a length-`n` f32 reduction over
/// operands of magnitude ≤ `scale`.
fn tol(n: usize, scale: f64) -> f64 {
    // n·ε for the summation + a couple of ulps for the products; the
    // constant is generous but still catches any wrong-index or
    // wrong-order bug (those produce O(scale) errors, not O(n·ε))
    (n as f64 + 8.0) * (f32::EPSILON as f64) * scale.max(1.0) * 4.0
}

fn rand_vec(rng: &mut SplitMix64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| lo + (hi - lo) * rng.next_f32()).collect()
}

#[test]
fn gather_row_dot_matches_f64_reference() {
    let gen =
        (usize_in(1..40), usize_in(1..24), usize_in(1..6), usize_in(1..5), u64_in(0..u64::MAX));
    Runner::new("infer-gather-row-dot-vs-f64").cases(96).run(
        &gen,
        |&(rows, dim, n_query, rep, seed)| {
            let mut rng = SplitMix64::new(seed);
            let src = rand_vec(&mut rng, rows * dim, -2.0, 2.0);
            let table = BlockedTable::from_rows(rows, dim, &src).unwrap();
            let query = rand_vec(&mut rng, n_query * dim, -2.0, 2.0);
            let ids: Vec<u32> =
                (0..n_query * rep).map(|_| (rng.next_u64() % rows as u64) as u32).collect();
            let mut out = Vec::new();
            gather_row_dot_rep(&table, &ids, &query, dim, rep, &mut out);
            prop_assert_eq!(out.len(), ids.len(), "one dot per id");
            for (i, &got) in out.iter().enumerate() {
                let row = &src[(ids[i] as usize) * dim..(ids[i] as usize + 1) * dim];
                let q = &query[(i / rep) * dim..(i / rep + 1) * dim];
                let want: f64 = row.iter().zip(q).map(|(&a, &b)| a as f64 * b as f64).sum();
                prop_assert!(
                    (got as f64 - want).abs() <= tol(dim, 4.0),
                    "dot {i}: got {got}, f64 reference {want}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn group_weighted_sum_matches_f64_reference() {
    let gen = (usize_in(1..20), usize_in(1..8), usize_in(1..24), u64_in(0..u64::MAX));
    Runner::new("infer-group-weighted-sum-vs-f64").cases(96).run(&gen, |&(n, group, dim, seed)| {
        let mut rng = SplitMix64::new(seed);
        let weights = rand_vec(&mut rng, n * group, -1.5, 1.5);
        let values = rand_vec(&mut rng, n * group * dim, -2.0, 2.0);
        let mut out = Vec::new();
        group_weighted_sum(&weights, &values, dim, group, &mut out);
        for g in 0..n {
            for c in 0..dim {
                let want: f64 = (0..group)
                    .map(|k| {
                        weights[g * group + k] as f64 * values[(g * group + k) * dim + c] as f64
                    })
                    .sum();
                let got = out[g * dim + c] as f64;
                prop_assert!(
                    (got - want).abs() <= tol(group, 3.0),
                    "block {g} col {c}: got {got}, want {want}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn group_mean_matches_f64_reference() {
    let gen = (usize_in(1..20), usize_in(1..8), usize_in(1..24), u64_in(0..u64::MAX));
    Runner::new("infer-group-mean-vs-f64").cases(96).run(&gen, |&(n, group, dim, seed)| {
        let mut rng = SplitMix64::new(seed);
        let values = rand_vec(&mut rng, n * group * dim, -3.0, 3.0);
        let mut out = Vec::new();
        group_mean(&values, dim, group, &mut out);
        for g in 0..n {
            for c in 0..dim {
                let want: f64 =
                    (0..group).map(|k| values[(g * group + k) * dim + c] as f64).sum::<f64>()
                        / group as f64;
                let got = out[g * dim + c] as f64;
                prop_assert!(
                    (got - want).abs() <= tol(group, 3.0),
                    "block {g} col {c}: got {got}, want {want}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn softmax_groups_matches_f64_reference() {
    let gen = (usize_in(1..30), usize_in(1..9), u64_in(0..u64::MAX));
    Runner::new("infer-softmax-groups-vs-f64").cases(96).run(&gen, |&(n, group, seed)| {
        let mut rng = SplitMix64::new(seed);
        let src = rand_vec(&mut rng, n * group, -20.0, 20.0);
        let mut xs = src.clone();
        softmax_groups_inplace(&mut xs, group);
        for g in 0..n {
            let block = &src[g * group..(g + 1) * group];
            let max = block.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
            let exps: Vec<f64> = block.iter().map(|&x| (x as f64 - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            let mut total = 0.0f64;
            for (k, &e) in exps.iter().enumerate() {
                let got = xs[g * group + k] as f64;
                let want = e / sum;
                prop_assert!(
                    (got - want).abs() <= tol(group, 1.0),
                    "block {g} slot {k}: got {got}, want {want}"
                );
                total += got;
            }
            prop_assert!((total - 1.0).abs() < 1e-5, "block {g} sums to {total}");
        }
        Ok(())
    });
}

#[test]
fn matmul_bias_act_matches_f64_reference() {
    let gen =
        (usize_in(1..16), usize_in(1..24), usize_in(1..24), usize_in(0..3), u64_in(0..u64::MAX));
    Runner::new("infer-matmul-bias-act-vs-f64").cases(96).run(
        &gen,
        |&(rows, d_in, d_out, act_idx, seed)| {
            let act = [Activation::None, Activation::Relu, Activation::Tanh][act_idx];
            let mut rng = SplitMix64::new(seed);
            let a = rand_vec(&mut rng, rows * d_in, -1.5, 1.5);
            let w = rand_vec(&mut rng, d_in * d_out, -1.5, 1.5);
            let bias = rand_vec(&mut rng, d_out, -1.0, 1.0);
            let mut out = Vec::new();
            matmul_bias_act(&a, rows, d_in, &w, d_out, &bias, act, &mut out);
            for i in 0..rows {
                for j in 0..d_out {
                    let pre: f64 = (0..d_in)
                        .map(|k| a[i * d_in + k] as f64 * w[k * d_out + j] as f64)
                        .sum::<f64>()
                        + bias[j] as f64;
                    let want = match act {
                        Activation::None => pre,
                        Activation::Relu => pre.max(0.0),
                        Activation::Tanh => pre.tanh(),
                    };
                    let got = out[i * d_out + j] as f64;
                    prop_assert!(
                        (got - want).abs() <= tol(d_in, 3.0),
                        "[{i},{j}] act {act:?}: got {got}, want {want}"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn matmul2_matches_f64_concat_reference() {
    let gen = (usize_in(1..12), usize_in(1..20), usize_in(1..20), u64_in(0..u64::MAX));
    Runner::new("infer-split-matmul-vs-f64").cases(96).run(&gen, |&(rows, d_in, d_out, seed)| {
        let mut rng = SplitMix64::new(seed);
        let a = rand_vec(&mut rng, rows * d_in, -1.5, 1.5);
        let b = rand_vec(&mut rng, rows * d_in, -1.5, 1.5);
        let w_a = rand_vec(&mut rng, d_in * d_out, -1.5, 1.5);
        let w_b = rand_vec(&mut rng, d_in * d_out, -1.5, 1.5);
        let bias = rand_vec(&mut rng, d_out, -1.0, 1.0);
        let mut out = Vec::new();
        matmul2_bias_act(&a, &b, rows, d_in, &w_a, &w_b, d_out, &bias, Activation::Relu, &mut out);
        for i in 0..rows {
            for j in 0..d_out {
                let pre: f64 = (0..d_in)
                    .map(|k| a[i * d_in + k] as f64 * w_a[k * d_out + j] as f64)
                    .chain((0..d_in).map(|k| b[i * d_in + k] as f64 * w_b[k * d_out + j] as f64))
                    .sum::<f64>()
                    + bias[j] as f64;
                let want = pre.max(0.0);
                let got = out[i * d_out + j] as f64;
                prop_assert!(
                    (got - want).abs() <= tol(2 * d_in, 3.0),
                    "[{i},{j}]: got {got}, want {want}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn row_dot_and_residual_match_f64_reference() {
    let gen = (usize_in(1..20), usize_in(1..24), usize_in(1..5), u64_in(0..u64::MAX));
    Runner::new("infer-row-dot-residual-vs-f64").cases(96).run(&gen, |&(n_b, dim, rep, seed)| {
        let mut rng = SplitMix64::new(seed);
        let n = n_b * rep;
        let a = rand_vec(&mut rng, n * dim, -2.0, 2.0);
        let b = rand_vec(&mut rng, n_b * dim, -2.0, 2.0);
        let scale = 0.25f32;
        let mut out = Vec::new();
        row_dot_rep_scaled(&a, &b, dim, rep, scale, &mut out);
        for i in 0..n {
            let want: f64 = (0..dim)
                .map(|c| a[i * dim + c] as f64 * b[(i / rep) * dim + c] as f64)
                .sum::<f64>()
                * scale as f64;
            prop_assert!(
                (out[i] as f64 - want).abs() <= tol(dim, 4.0),
                "row {i}: got {}, want {want}",
                out[i]
            );
        }
        // residual combine: acc = e0 + gamma * acc, elementwise
        let e0 = rand_vec(&mut rng, n_b * dim, -2.0, 2.0);
        let mut acc = b.clone();
        residual_inplace(&e0, 0.5, &mut acc);
        for i in 0..n_b * dim {
            let want = e0[i] as f64 + 0.5 * b[i] as f64;
            prop_assert!(
                (acc[i] as f64 - want).abs() <= tol(1, 2.0),
                "residual {i}: got {}, want {want}",
                acc[i]
            );
        }
        // add_into is exact per element (single f32 add)
        let mut sum = Vec::new();
        add_into(&e0, &b, &mut sum);
        for i in 0..n_b * dim {
            prop_assert_eq!(sum[i], e0[i] + b[i], "add_into {i}");
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------
// f64→f32 table conversion edge cases
// ---------------------------------------------------------------------

#[test]
fn conversion_preserves_normals_exactly() {
    let gen = (usize_in(1..20), usize_in(1..40), u64_in(0..u64::MAX));
    Runner::new("infer-convert-normals-exact").cases(96).run(&gen, |&(rows, dim, seed)| {
        let mut rng = SplitMix64::new(seed);
        let src = rand_vec(&mut rng, rows * dim, -5.0, 5.0);
        let table = BlockedTable::from_rows(rows, dim, &src).unwrap();
        prop_assert_eq!(table.stride() % BLOCK_FLOATS, 0, "stride must be blocked");
        prop_assert_eq!(table.stride(), blocked_stride(dim), "stride formula");
        for r in 0..rows {
            // unscaled conversion of normal floats is the identity
            prop_assert_eq!(table.row(r), &src[r * dim..(r + 1) * dim], "row {r} changed");
        }
        let dense = sanitize_dense(rows, dim, &src).unwrap();
        prop_assert_eq!(&dense, &src, "dense sanitise of normals is identity");
        Ok(())
    });
}

#[test]
fn conversion_flushes_scaled_subnormals_to_zero() {
    // values whose scaled result lands in the subnormal range must come
    // out exactly zero, not as a denormal the kernels would chew on
    let gen = (f32_in(1.0..100.0), u64_in(0..u64::MAX));
    Runner::new("infer-convert-flushes-subnormals").cases(64).run(&gen, |&(mag, _seed)| {
        let tiny = mag * 1e-35f32; // normal f32
        let table = BlockedTable::from_rows_scaled(1, 1, &[tiny], 1e-10).unwrap();
        let got = table.row(0)[0];
        prop_assert!(
            got == 0.0 || got.abs() >= f32::MIN_POSITIVE,
            "scaled conversion leaked a subnormal: {got:e}"
        );
        prop_assert_eq!(flush_subnormal(f32::MIN_POSITIVE / 4.0), 0.0, "direct flush");
        prop_assert_eq!(flush_subnormal(-f32::MIN_POSITIVE / 4.0), 0.0, "negative flush");
        prop_assert_eq!(flush_subnormal(1.5), 1.5, "normals untouched");
        Ok(())
    });
}

#[test]
fn conversion_rejects_non_finite_and_overflow_with_position() {
    let gen = (usize_in(1..8), usize_in(1..8), usize_in(0..64), u64_in(0..u64::MAX));
    Runner::new("infer-convert-typed-errors").cases(64).run(
        &gen,
        |&(rows, dim, poison_idx, seed)| {
            let mut rng = SplitMix64::new(seed);
            let poison = poison_idx % (rows * dim);
            let (pr, pc) = (poison / dim, poison % dim);
            // NaN / infinity are NonFinite at the right coordinates
            for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
                let mut src = rand_vec(&mut rng, rows * dim, -1.0, 1.0);
                src[poison] = bad;
                let err = BlockedTable::from_rows(rows, dim, &src).unwrap_err();
                prop_assert_eq!(
                    err,
                    ConvertError::NonFinite { row: pr, col: pc },
                    "bad value {bad}"
                );
                let derr = sanitize_dense(rows, dim, &src).unwrap_err();
                prop_assert_eq!(derr, ConvertError::NonFinite { row: pr, col: pc }, "dense");
            }
            // a finite value whose scaled product leaves f32 range is
            // Overflow, again with coordinates
            let mut src = rand_vec(&mut rng, rows * dim, -1.0, 1.0);
            src[poison] = f32::MAX;
            let err = BlockedTable::from_rows_scaled(rows, dim, &src, 1e12).unwrap_err();
            match err {
                ConvertError::Overflow { row, col, value } => {
                    prop_assert_eq!((row, col), (pr, pc), "overflow position");
                    prop_assert!(value.is_finite(), "the f64 value itself is finite");
                }
                other => prop_assert!(false, "expected Overflow, got {other:?}"),
            }
            Ok(())
        },
    );
}

#[test]
fn padding_lanes_are_zero_so_full_stride_dots_are_safe() {
    let gen = (usize_in(1..10), usize_in(1..40), u64_in(0..u64::MAX));
    Runner::new("infer-convert-padding-zero").cases(64).run(&gen, |&(rows, dim, seed)| {
        let mut rng = SplitMix64::new(seed);
        let src = rand_vec(&mut rng, rows * dim, -5.0, 5.0);
        let table = BlockedTable::from_rows(rows, dim, &src).unwrap();
        // a dot over the logical row equals a dot over the padded row
        // against a probe that extends past dim — only if padding is 0
        let probe = vec![1.0f32; table.stride()];
        for r in 0..rows {
            let logical = dot_f32(table.row(r), &probe[..dim]);
            let full: f32 = src[r * dim..(r + 1) * dim].iter().sum();
            prop_assert!((logical - full).abs() < 1e-4, "row {r} logical dot");
        }
        prop_assert_eq!(table.bytes(), rows * table.stride() * 4, "bytes accounts for padding");
        Ok(())
    });
}
