//! Finite-difference gradient checks: for every tape op whose backward
//! pass carries the model (gather and its fused dot, the matmul family,
//! the grouped attention ops and peer concat), analytic gradients must
//! match central differences on ≥64 random shapes per suite.
//!
//! These suites complement `autodiff_props.rs`: that file checks random
//! op *chains* and structural invariants, these pin each op in
//! isolation so a broken backward arm cannot hide behind a chain's
//! loose tolerance. Central differences at `eps = 1e-3` on smooth f32
//! ops carry O(eps²) truncation plus catastrophic-cancellation noise,
//! so the tolerance band is relative (`2e-2`) — loose enough for f32,
//! tight enough to catch any sign, transpose, scatter or indexing bug.

use kgag_tensor::{init, NodeId, ParamId, ParamStore, Tape, Tensor};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u64_in, usize_in, vec_of};
use kgag_testkit::prop_assert;
use kgag_testkit::SplitMix64;

const EPS: f32 = 1e-3;
const TOL: f32 = 2e-2;

/// Numeric gradient of `f` w.r.t. `pid` via central differences.
fn numeric_grad(store: &ParamStore, pid: ParamId, f: &dyn Fn(&ParamStore) -> f32) -> Tensor {
    let mut store = store.clone();
    let shape = store.shape(pid);
    let mut out = Tensor::zeros(shape.rows, shape.cols);
    for i in 0..shape.len() {
        let orig = store.value(pid).data()[i];
        store.value_mut(pid).data_mut()[i] = orig + EPS;
        let up = f(&store);
        store.value_mut(pid).data_mut()[i] = orig - EPS;
        let down = f(&store);
        store.value_mut(pid).data_mut()[i] = orig;
        out.data_mut()[i] = (up - down) / (2.0 * EPS);
    }
    out
}

/// Assert analytic ≈ numeric under the relative band, with a zero
/// analytic gradient treated as "numeric must be near zero too".
fn check_close(name: &str, analytic: Option<&Tensor>, numeric: &Tensor) -> Result<(), String> {
    let zeros;
    let analytic = match analytic {
        Some(t) => t,
        None => {
            zeros = Tensor::zeros(numeric.rows(), numeric.cols());
            &zeros
        }
    };
    for (i, (&a, &n)) in analytic.data().iter().zip(numeric.data()).enumerate() {
        if (a - n).abs() > TOL * (1.0 + a.abs().max(n.abs())) {
            return Err(format!("{name} element {i}: analytic {a} vs numeric {n}"));
        }
    }
    Ok(())
}

/// Run one op under a smooth loss (`mean(tanh(x))` keeps values in a
/// well-conditioned range) and compare every parameter's gradient.
fn gradcheck(
    store: &ParamStore,
    params: &[(&str, ParamId)],
    build: impl Fn(&mut Tape<'_>) -> NodeId + Copy,
) -> Result<(), String> {
    let loss = move |s: &ParamStore| -> f32 {
        let mut tape = Tape::new(s);
        let x = build(&mut tape);
        let t = tape.tanh(x);
        let l = tape.mean_all(t);
        tape.value(l).item()
    };
    let mut tape = Tape::new(store);
    let x = build(&mut tape);
    let t = tape.tanh(x);
    let l = tape.mean_all(t);
    let grads = tape.backward(l);
    for &(name, pid) in params {
        let numeric = numeric_grad(store, pid, &loss);
        check_close(name, grads.get(pid), &numeric)?;
    }
    Ok(())
}

/// Random row indices, deliberately with repeats so the scatter-add
/// accumulation path is exercised.
fn random_rows(seed: u64, count: usize, table_rows: usize) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..count).map(|_| (rng.next_u64() % table_rows as u64) as u32).collect()
}

/// gather: d(table) must scatter-accumulate into exactly the gathered
/// rows, including rows gathered more than once.
#[test]
fn gather_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(2..6), usize_in(1..5), usize_in(1..8));
    Runner::new("gather_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, table_rows, d, picks)| {
            let mut store = ParamStore::new();
            let table = store.register("table", init::uniform(table_rows, d, 0.9, seed));
            let rows = random_rows(seed ^ 0xa5, picks, table_rows);
            let res = gradcheck(&store, &[("d_table", table)], |tape| {
                let g = tape.gather(table, &rows);
                tape.mul(g, g)
            });
            prop_assert!(res.is_ok(), "{res:?} (rows {rows:?})");
            Ok(())
        },
    );
}

/// gather_row_dot: the fused op's two backward outputs (scatter into
/// the table, dense grad for the query side) both match differences.
#[test]
fn gather_row_dot_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(2..6), usize_in(1..5), usize_in(1..8));
    Runner::new("gather_row_dot_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, table_rows, d, picks)| {
            let mut store = ParamStore::new();
            let table = store.register("table", init::uniform(table_rows, d, 0.9, seed));
            let query = store.register("query", init::uniform(picks, d, 0.9, seed ^ 3));
            let rows = random_rows(seed ^ 0xb6, picks, table_rows);
            let res = gradcheck(&store, &[("d_table", table), ("d_query", query)], |tape| {
                let q = tape.param(query);
                tape.gather_row_dot(table, &rows, q)
            });
            prop_assert!(res.is_ok(), "{res:?} (rows {rows:?})");
            Ok(())
        },
    );
}

/// matmul: both factor gradients (the Bᵀ and Aᵀ products) match.
#[test]
fn matmul_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(1..5), usize_in(1..5), usize_in(1..5));
    Runner::new("matmul_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, m, k, n)| {
            let mut store = ParamStore::new();
            let a = store.register("a", init::uniform(m, k, 0.9, seed));
            let b = store.register("b", init::uniform(k, n, 0.9, seed ^ 1));
            let res = gradcheck(&store, &[("dA", a), ("dB", b)], |tape| {
                let an = tape.param(a);
                let bn = tape.param(b);
                tape.matmul(an, bn)
            });
            prop_assert!(res.is_ok(), "{res:?}");
            Ok(())
        },
    );
}

/// row_dot — the matmul variant behind attention logits: per-row
/// cross-gradients (d a row i = g_i · b row i) match.
#[test]
fn row_dot_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(1..8), usize_in(1..5));
    Runner::new("row_dot_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, rows, d)| {
            let mut store = ParamStore::new();
            let a = store.register("a", init::uniform(rows, d, 0.9, seed));
            let b = store.register("b", init::uniform(rows, d, 0.9, seed ^ 2));
            let res = gradcheck(&store, &[("dA", a), ("dB", b)], |tape| {
                let an = tape.param(a);
                let bn = tape.param(b);
                tape.row_dot(an, bn)
            });
            prop_assert!(res.is_ok(), "{res:?}");
            Ok(())
        },
    );
}

/// softmax_groups: the full per-block Jacobian (diag(p) − p pᵀ) matches.
#[test]
fn softmax_groups_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(1..5), usize_in(2..6));
    Runner::new("softmax_groups_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, blocks, group)| {
            let mut store = ParamStore::new();
            let logits = store.register("logits", init::uniform(blocks * group, 1, 1.5, seed));
            // weight each probability differently so the softmax Jacobian's
            // off-diagonal terms matter (a uniform loss would cancel them)
            let weights = init::uniform(blocks * group, 1, 1.0, seed ^ 9);
            let res = gradcheck(&store, &[("d_logits", logits)], |tape| {
                let l = tape.param(logits);
                let p = tape.softmax_groups(l, group);
                let w = tape.constant(weights.clone());
                tape.mul(p, w)
            });
            prop_assert!(res.is_ok(), "{res:?}");
            Ok(())
        },
    );
}

/// group_weighted_sum: gradients w.r.t. both the weights column and the
/// value rows match.
#[test]
fn group_weighted_sum_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(1..4), usize_in(2..5), usize_in(1..5));
    Runner::new("group_weighted_sum_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, blocks, group, d)| {
            let mut store = ParamStore::new();
            let w = store.register("w", init::uniform(blocks * group, 1, 0.9, seed));
            let v = store.register("v", init::uniform(blocks * group, d, 0.9, seed ^ 5));
            let res = gradcheck(&store, &[("dW", w), ("dV", v)], |tape| {
                let wn = tape.param(w);
                let vn = tape.param(v);
                tape.group_weighted_sum(wn, vn, group)
            });
            prop_assert!(res.is_ok(), "{res:?}");
            Ok(())
        },
    );
}

/// peer_concat: each input row's gradient is the sum of its slices from
/// the group-1 outputs that contain it.
#[test]
fn peer_concat_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(1..4), usize_in(2..5), usize_in(1..4));
    Runner::new("peer_concat_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, blocks, group, d)| {
            let mut store = ParamStore::new();
            let x = store.register("x", init::uniform(blocks * group, d, 0.9, seed));
            // square after concat so each copy of a row contributes a
            // distinct gradient slice (a linear loss would make any
            // mis-routing of slices invisible)
            let res = gradcheck(&store, &[("dX", x)], |tape| {
                let xn = tape.param(x);
                let pc = tape.peer_concat(xn, group);
                tape.mul(pc, pc)
            });
            prop_assert!(res.is_ok(), "{res:?}");
            Ok(())
        },
    );
}

/// Composite propagation slice: repeat_rows → gather_row_dot →
/// softmax_groups → group_weighted_sum — the exact op sequence of one
/// KGAG propagation level — survives gradcheck end to end.
#[test]
fn propagation_level_gradients_match_central_differences() {
    let gen = (u64_in(0..10_000), usize_in(1..3), usize_in(2..4), usize_in(1..4));
    Runner::new("propagation_level_gradients_match_central_differences").cases(64).run(
        &gen,
        |&(seed, instances, k, d)| {
            let mut store = ParamStore::new();
            let rel = store.register("rel", init::uniform(3, d, 0.9, seed));
            let query = store.register("query", init::uniform(instances, d, 0.9, seed ^ 4));
            let vals = store.register("vals", init::uniform(instances * k, d, 0.9, seed ^ 8));
            let rels = random_rows(seed ^ 0xc7, instances * k, 3);
            let res = gradcheck(
                &store,
                &[("d_rel", rel), ("d_query", query), ("d_vals", vals)],
                |tape| {
                    let q = tape.param(query);
                    let v = tape.param(vals);
                    let q_rep = tape.repeat_rows(q, k);
                    let pi = tape.gather_row_dot(rel, &rels, q_rep);
                    let w = tape.softmax_groups(pi, k);
                    tape.group_weighted_sum(w, v, k)
                },
            );
            prop_assert!(res.is_ok(), "{res:?} (rels {rels:?})");
            Ok(())
        },
    );
}

/// Generator sanity: vec_of-driven shapes in the other suites stay in
/// range (guards the suite itself against a generator regression).
#[test]
fn random_rows_stay_in_bounds() {
    let gen = (u64_in(0..10_000), usize_in(1..64), usize_in(1..32), vec_of(usize_in(0..4), 0..2));
    Runner::new("random_rows_stay_in_bounds").cases(64).run(&gen, |&(seed, count, rows, _)| {
        let picked = random_rows(seed, count, rows);
        prop_assert!(picked.iter().all(|&r| (r as usize) < rows));
        Ok(())
    });
}
