//! Parameter-store checkpointing.
//!
//! A compact binary format for saving and restoring trained parameters:
//!
//! ```text
//! magic "KGCP" | version u32 | param count u32 |
//!   per param: name len u32 | name bytes | rows u32 | cols u32 | f32 LE data
//! ```
//!
//! Version 2 ([`save_with_optimizer`]) appends an Adam moment section
//! after the parameters, so training can resume bit-identically:
//!
//! ```text
//! section magic "ADM1" | entry count u32 |
//!   per entry: name len u32 | name bytes | t u32 | rows u32 | cols u32 |
//!              m data f32 LE | v data f32 LE
//! ```
//!
//! An optional *tag* section may trail either version
//! ([`save_tagged`]): an opaque caller string — e.g. the propagation
//! backend the parameters were trained under — that restore paths can
//! check before loading ([`read_tag`] / [`verify_tag`]):
//!
//! ```text
//! section magic "TAG1" | tag len u32 | tag bytes
//! ```
//!
//! Loading restores values *into an existing store by name*, so a model
//! can be rebuilt from its config + dataset and then rehydrated — the
//! structural metadata (graph, sampler seeds) never needs serialising.
//! [`load`] accepts both versions (ignoring a v2 optimizer section);
//! [`load_with_optimizer`] requires v2. Both ignore a trailing tag
//! section, and tag readers treat untagged buffers as legacy (`None`) —
//! old checkpoints stay loadable in every combination.

use crate::optim::Adam;
use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Cursor over a checkpoint byte slice with bounds-checked LE reads.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn advance(&mut self, n: usize) {
        self.buf = &self.buf[n..];
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        f32::from_le_bytes(head.try_into().unwrap())
    }
}

/// Format magic bytes.
const MAGIC: &[u8; 4] = b"KGCP";
/// Params-only format version.
const VERSION: u32 = 1;
/// Params + optimizer-state format version.
const VERSION_WITH_OPTIMIZER: u32 = 2;
/// Magic opening the Adam moment section of a v2 checkpoint.
const ADAM_MAGIC: &[u8; 4] = b"ADM1";
/// Magic opening the trailing tag section of a tagged checkpoint.
const TAG_MAGIC: &[u8; 4] = b"TAG1";

/// Errors from checkpoint decoding.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer does not start with the format magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the declared content.
    Truncated,
    /// A parameter name is not valid UTF-8.
    BadName,
    /// The target store is missing a named parameter.
    MissingParam(String),
    /// A parameter's stored shape disagrees with the target store.
    ShapeMismatch(String),
    /// [`load_with_optimizer`] was given a checkpoint without an
    /// optimizer section (a v1 file, or a corrupted section magic).
    NoOptimizerState,
    /// [`verify_tag`] found a tag section carrying a different tag than
    /// the caller requires: `(expected, found)`.
    TagMismatch(String, String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a KGCP checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::BadName => write!(f, "parameter name is not valid UTF-8"),
            CheckpointError::MissingParam(n) => {
                write!(f, "store has no parameter named {n:?}")
            }
            CheckpointError::ShapeMismatch(n) => {
                write!(f, "shape mismatch for parameter {n:?}")
            }
            CheckpointError::NoOptimizerState => {
                write!(f, "checkpoint has no optimizer-state section")
            }
            CheckpointError::TagMismatch(expected, found) => {
                write!(f, "checkpoint tagged {found:?} but {expected:?} is required")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn push_tensor_data(buf: &mut Vec<u8>, t: &Tensor) {
    for &x in t.data() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn save_params(store: &ParamStore, version: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + store.num_weights() * 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for (_, name, value) in store.iter() {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&(value.rows() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.cols() as u32).to_le_bytes());
        push_tensor_data(&mut buf, value);
    }
    buf
}

/// Serialise every parameter of a store (v1, no optimizer state).
pub fn save(store: &ParamStore) -> Vec<u8> {
    save_params(store, VERSION)
}

/// [`save`] plus a trailing tag section carrying `tag` verbatim.
/// Readers that don't know about tags ([`load`]) ignore the section;
/// [`verify_tag`] lets restore paths refuse a mismatched buffer before
/// touching the store.
pub fn save_tagged(store: &ParamStore, tag: &str) -> Vec<u8> {
    let mut buf = save_params(store, VERSION);
    buf.extend_from_slice(TAG_MAGIC);
    buf.extend_from_slice(&(tag.len() as u32).to_le_bytes());
    buf.extend_from_slice(tag.as_bytes());
    buf
}

/// Serialise parameters *and* the Adam moment state (v2), for
/// bit-identical training resume. Entries are keyed by parameter name
/// like the parameter section, and emitted in id order (the order
/// [`Adam::export_state`] guarantees).
pub fn save_with_optimizer(store: &ParamStore, opt: &Adam) -> Vec<u8> {
    let mut buf = save_params(store, VERSION_WITH_OPTIMIZER);
    let state = opt.export_state();
    buf.extend_from_slice(ADAM_MAGIC);
    buf.extend_from_slice(&(state.len() as u32).to_le_bytes());
    for (id, t, m, v) in &state {
        let name = store.name(*id);
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&t.to_le_bytes());
        buf.extend_from_slice(&(m.rows() as u32).to_le_bytes());
        buf.extend_from_slice(&(m.cols() as u32).to_le_bytes());
        push_tensor_data(&mut buf, m);
        push_tensor_data(&mut buf, v);
    }
    buf
}

fn read_name(buf: &mut Reader<'_>) -> Result<String, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let name_len = buf.get_u32_le() as usize;
    if buf.remaining() < name_len {
        return Err(CheckpointError::Truncated);
    }
    let name =
        std::str::from_utf8(&buf.buf[..name_len]).map_err(|_| CheckpointError::BadName)?.to_owned();
    buf.advance(name_len);
    Ok(name)
}

fn read_data(buf: &mut Reader<'_>, n: usize) -> Result<Vec<f32>, CheckpointError> {
    if buf.remaining() < n * 4 {
        return Err(CheckpointError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(data)
}

/// Validate the header and position the reader after it, returning the
/// file's version.
fn read_header<'a>(bytes: &'a [u8]) -> Result<(Reader<'a>, u32), CheckpointError> {
    let mut buf = Reader { buf: bytes };
    if buf.remaining() < 4 || &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    buf.advance(4);
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let version = buf.get_u32_le();
    if version != VERSION && version != VERSION_WITH_OPTIMIZER {
        return Err(CheckpointError::BadVersion(version));
    }
    Ok((buf, version))
}

fn read_params_section(
    store: &mut ParamStore,
    buf: &mut Reader<'_>,
) -> Result<usize, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    let mut restored = 0usize;
    for _ in 0..count {
        let name = read_name(buf)?;
        if buf.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let data = read_data(buf, rows * cols)?;
        let id = store.id(&name).ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
        let shape = store.shape(id);
        if shape.rows != rows || shape.cols != cols {
            return Err(CheckpointError::ShapeMismatch(name));
        }
        *store.value_mut(id) = Tensor::from_vec(rows, cols, data);
        restored += 1;
    }
    Ok(restored)
}

/// Restore parameter values into `store` by name. Every parameter in the
/// checkpoint must exist in the store with the same shape; parameters of
/// the store absent from the checkpoint keep their current values. A v2
/// optimizer section, if present, is ignored.
pub fn load(store: &mut ParamStore, bytes: &[u8]) -> Result<usize, CheckpointError> {
    let (mut buf, _version) = read_header(bytes)?;
    read_params_section(store, &mut buf)
}

/// Restore parameters *and* the Adam moment state from a v2 checkpoint.
/// `opt`'s previous state is replaced wholesale; parameters without a
/// stored entry (never stepped before the save) restart at t = 0,
/// exactly as they would have in the original run.
pub fn load_with_optimizer(
    store: &mut ParamStore,
    opt: &mut Adam,
    bytes: &[u8],
) -> Result<usize, CheckpointError> {
    let (mut buf, version) = read_header(bytes)?;
    if version != VERSION_WITH_OPTIMIZER {
        return Err(CheckpointError::NoOptimizerState);
    }
    let restored = read_params_section(store, &mut buf)?;
    if buf.remaining() < 4 || &buf.buf[..4] != ADAM_MAGIC {
        return Err(CheckpointError::NoOptimizerState);
    }
    buf.advance(4);
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    let mut state = Vec::with_capacity(count);
    for _ in 0..count {
        let name = read_name(&mut buf)?;
        if buf.remaining() < 12 {
            return Err(CheckpointError::Truncated);
        }
        let t = buf.get_u32_le();
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let m = read_data(&mut buf, rows * cols)?;
        let v = read_data(&mut buf, rows * cols)?;
        let id = store.id(&name).ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
        let shape = store.shape(id);
        if shape.rows != rows || shape.cols != cols {
            return Err(CheckpointError::ShapeMismatch(name));
        }
        state.push((id, t, Tensor::from_vec(rows, cols, m), Tensor::from_vec(rows, cols, v)));
    }
    opt.set_state(state);
    Ok(restored)
}

/// Advance past the parameter section without a target store (shapes
/// are read from the buffer alone).
fn skip_params_section(buf: &mut Reader<'_>) -> Result<(), CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    for _ in 0..count {
        read_name(buf)?;
        if buf.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        if buf.remaining() < rows * cols * 4 {
            return Err(CheckpointError::Truncated);
        }
        buf.advance(rows * cols * 4);
    }
    Ok(())
}

/// Advance past an Adam moment section if one opens at the cursor.
/// Returns `false` (cursor untouched) when the next bytes are not an
/// `ADM1` magic — the caller decides whether that's legal.
fn skip_adam_section(buf: &mut Reader<'_>) -> Result<bool, CheckpointError> {
    if buf.remaining() < 4 || &buf.buf[..4] != ADAM_MAGIC {
        return Ok(false);
    }
    buf.advance(4);
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    for _ in 0..count {
        read_name(buf)?;
        if buf.remaining() < 12 {
            return Err(CheckpointError::Truncated);
        }
        buf.advance(4); // t
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        if buf.remaining() < 2 * rows * cols * 4 {
            return Err(CheckpointError::Truncated);
        }
        buf.advance(2 * rows * cols * 4); // m + v
    }
    Ok(true)
}

/// Read the tag of a checkpoint, if it carries one. `Ok(None)` for
/// legacy buffers without a tag section (including v2 buffers whose
/// trailing bytes are not a recognisable `TAG1` section). Structural
/// errors (bad magic, truncation mid-section) stay typed.
pub fn read_tag(bytes: &[u8]) -> Result<Option<String>, CheckpointError> {
    let (mut buf, _version) = read_header(bytes)?;
    skip_params_section(&mut buf)?;
    skip_adam_section(&mut buf)?;
    if buf.remaining() < 4 || &buf.buf[..4] != TAG_MAGIC {
        return Ok(None);
    }
    buf.advance(4);
    let tag = read_name(&mut buf)?;
    Ok(Some(tag))
}

/// Require a tagged checkpoint to carry exactly `expected`
/// ([`CheckpointError::TagMismatch`] otherwise). Untagged legacy
/// buffers pass — they predate tagging and stay loadable everywhere.
pub fn verify_tag(bytes: &[u8], expected: &str) -> Result<(), CheckpointError> {
    match read_tag(bytes)? {
        Some(tag) if tag != expected => Err(CheckpointError::TagMismatch(expected.to_owned(), tag)),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("emb", init::uniform(7, 3, 1.0, 1));
        s.register("w", init::uniform(3, 3, 1.0, 2));
        s.register("b", Tensor::zeros(1, 3));
        s
    }

    #[test]
    fn round_trip_restores_exact_values() {
        let original = store();
        let bytes = save(&original);
        let mut fresh = ParamStore::new();
        fresh.register("emb", Tensor::zeros(7, 3));
        fresh.register("w", Tensor::zeros(3, 3));
        fresh.register("b", Tensor::full(1, 3, 9.0));
        let restored = load(&mut fresh, &bytes).unwrap();
        assert_eq!(restored, 3);
        for (_, name, value) in original.iter() {
            let id = fresh.id(name).unwrap();
            assert_eq!(fresh.value(id), value, "param {name}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut s = store();
        assert_eq!(load(&mut s, b"NOPE1234"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let s = store();
        let bytes = save(&s);
        for cut in [5usize, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut fresh = store();
            assert_eq!(
                load(&mut fresh, &bytes[..cut]),
                Err(CheckpointError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn missing_param_is_reported() {
        let s = store();
        let bytes = save(&s);
        let mut other = ParamStore::new();
        other.register("emb", Tensor::zeros(7, 3));
        let err = load(&mut other, &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::MissingParam(n) if n == "w"));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let s = store();
        let bytes = save(&s);
        let mut other = ParamStore::new();
        other.register("emb", Tensor::zeros(7, 4)); // wrong cols
        other.register("w", Tensor::zeros(3, 3));
        other.register("b", Tensor::zeros(1, 3));
        let err = load(&mut other, &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch(n) if n == "emb"));
    }

    #[test]
    fn tagged_round_trip_loads_and_reports_tag() {
        let original = store();
        let bytes = save_tagged(&original, "gcn");
        assert_eq!(read_tag(&bytes).unwrap().as_deref(), Some("gcn"));
        assert_eq!(verify_tag(&bytes, "gcn"), Ok(()));
        assert_eq!(
            verify_tag(&bytes, "graphsage"),
            Err(CheckpointError::TagMismatch("graphsage".into(), "gcn".into()))
        );
        // the tag section is transparent to a plain load
        let mut fresh = ParamStore::new();
        fresh.register("emb", Tensor::zeros(7, 3));
        fresh.register("w", Tensor::zeros(3, 3));
        fresh.register("b", Tensor::full(1, 3, 9.0));
        assert_eq!(load(&mut fresh, &bytes).unwrap(), 3);
        for (_, name, value) in original.iter() {
            let id = fresh.id(name).unwrap();
            assert_eq!(fresh.value(id), value, "param {name}");
        }
    }

    #[test]
    fn untagged_buffers_are_legacy() {
        let bytes = save(&store());
        assert_eq!(read_tag(&bytes).unwrap(), None);
        assert_eq!(verify_tag(&bytes, "anything"), Ok(()));
    }

    #[test]
    fn tag_survives_an_optimizer_section() {
        let mut s = store();
        let mut adam = Adam::new(1e-2);
        // one step so the optimizer has state to serialise
        let mut tape = crate::Tape::new(&s);
        let w = tape.param(s.id("w").unwrap());
        let sq = tape.mul(w, w);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        crate::optim::Optimizer::step(&mut adam, &mut s, &grads);
        let mut bytes = save_with_optimizer(&s, &adam);
        bytes.extend_from_slice(TAG_MAGIC);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(b"gcn");
        assert_eq!(read_tag(&bytes).unwrap().as_deref(), Some("gcn"));
        let mut fresh = store();
        let mut fresh_adam = Adam::new(1e-2);
        assert!(load_with_optimizer(&mut fresh, &mut fresh_adam, &bytes).is_ok());
    }

    #[test]
    fn truncated_tag_section_is_detected() {
        let bytes = save_tagged(&store(), "interaction");
        assert_eq!(read_tag(&bytes[..bytes.len() - 2]), Err(CheckpointError::Truncated));
    }

    #[test]
    fn version_is_checked() {
        let s = store();
        let mut bytes = save(&s);
        bytes[4] = 99; // clobber version
        let mut fresh = store();
        assert_eq!(load(&mut fresh, &bytes), Err(CheckpointError::BadVersion(99)));
    }
}
