//! Dense row-major 2-D `f32` tensors with plain (non-differentiable) math.
//!
//! The [`crate::Tape`] builds on these for autodiff; substrates that train
//! with hand-written gradients (e.g. TransE in `kgag-kg`) use them directly.

use crate::pool;
use crate::shape::Shape;

/// Flop threshold below which the matmul kernels stay sequential. A
/// constant (never thread-count dependent) so the work decomposition is
/// a pure function of the problem shape.
const PAR_MIN_WORK: usize = 16 * 1024;

/// Run `kernel(first_row, band)` over horizontal bands of a row-major
/// `rows × cols` output buffer, in parallel when the work is large
/// enough. The kernel must compute each output row purely from its row
/// index, so banding cannot change any value — sequential execution is
/// the single-band special case.
pub(crate) fn par_row_bands(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    work: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if out.is_empty() {
        return;
    }
    let threads = pool::num_threads();
    if threads == 1 || rows < 2 || work < PAR_MIN_WORK {
        kernel(0, out);
        return;
    }
    let band_rows = rows.div_ceil(threads).max(1);
    pool::par_chunks_mut(out, band_rows * cols, |ci, band| kernel(ci * band_rows, band));
}

/// A dense, row-major, 2-D `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.shape.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.shape.len())
        }
    }
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { shape: Shape::new(rows, cols), data: vec![0.0; rows * cols] }
    }

    /// A tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { shape: Shape::new(rows, cols), data: vec![value; rows * cols] }
    }

    /// A `[1, 1]` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::full(1, 1, value)
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot fill a {}x{} tensor",
            data.len(),
            rows,
            cols
        );
        Tensor { shape: Shape::new(rows, cols), data }
    }

    /// Build from row slices (all rows must have equal length).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { shape: Shape::new(rows.len(), cols), data }
    }

    /// A column vector `[n, 1]` from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Tensor::from_vec(values.len(), 1, values.to_vec())
    }

    /// The `rows × cols` identity matrix (square).
    pub fn identity(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Shape accessor.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows() && c < self.cols());
        self.data[self.shape.index(r, c)]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows() && c < self.cols());
        let i = self.shape.index(r, c);
        self.data[i] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// The single element of a `[1, 1]` tensor.
    ///
    /// # Panics
    /// Panics when the tensor is not scalar-shaped.
    pub fn item(&self) -> f32 {
        assert!(self.shape.is_scalar(), "item() on non-scalar tensor {:?}", self.shape);
        self.data[0]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let out_shape = self
            .shape
            .matmul(&rhs.shape)
            .unwrap_or_else(|| panic!("matmul shape mismatch: {:?} x {:?}", self.shape, rhs.shape));
        let (m, k, n) = (self.rows(), self.cols(), rhs.cols());
        let mut out = vec![0.0f32; out_shape.len()];
        // i-k-j loop order: the inner loop walks both `rhs` and `out`
        // contiguously, which the compiler can vectorise. Output rows are
        // independent, so they parallelise as bands with bit-identical
        // per-element accumulation order (the `a == 0.0` skip included —
        // dropping it could turn a +0.0 sum into -0.0).
        par_row_bands(&mut out, m, n, m * k * n, |row0, band| {
            for (local, out_row) in band.chunks_mut(n).enumerate() {
                let i = row0 + local;
                let a_row = &self.data[i * k..(i + 1) * k];
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[kk * n..(kk + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        Tensor { shape: out_shape, data: out }
    }

    /// `selfᵀ × rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape,
            rhs.shape
        );
        let (m, k, n) = (self.cols(), self.rows(), rhs.cols());
        let mut out = vec![0.0f32; m * n];
        // Output-row-major form of the kk-outer original: out[i] still
        // accumulates over ascending kk, so every element sees the exact
        // accumulation order of the sequential kernel while rows become
        // independent units for banding.
        par_row_bands(&mut out, m, n, m * k * n, |row0, band| {
            for (local, out_row) in band.chunks_mut(n).enumerate() {
                let i = row0 + local;
                for kk in 0..k {
                    let a = self.data[kk * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[kk * n..(kk + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        Tensor { shape: Shape::new(m, n), data: out }
    }

    /// `self × rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape,
            rhs.shape
        );
        let (m, k, n) = (self.rows(), self.cols(), rhs.rows());
        let mut out = vec![0.0f32; m * n];
        par_row_bands(&mut out, m, n, m * k * n, |row0, band| {
            for (local, out_row) in band.chunks_mut(n).enumerate() {
                let a_row = &self.data[(row0 + local) * k..(row0 + local + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &rhs.data[j * k..(j + 1) * k];
                    *o = dot(a_row, b_row);
                }
            }
        });
        Tensor { shape: Shape::new(m, n), data: out }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: Shape::new(n, m), data: out }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip into a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self + rhs` elementwise.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }

    /// `self - rhs` elementwise.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }

    /// `self * rhs` elementwise (Hadamard).
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }

    /// `self * k` elementwise.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// `self += rhs * k` in place (axpy).
    pub fn axpy(&mut self, k: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += k * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for the empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Inner product of two row slices of equal length taken from two
    /// tensors: `self.row(i) · rhs.row(j)`.
    pub fn row_dot(&self, i: usize, rhs: &Tensor, j: usize) -> f32 {
        assert_eq!(self.cols(), rhs.cols(), "row_dot width mismatch");
        dot(self.row(i), rhs.row(j))
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Row-wise softmax (each row sums to 1). Numerically stable.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows() {
            softmax_inplace(out.row_mut(r));
        }
        out
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Numerically-stable in-place softmax of a slice.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), Shape::new(2, 3));
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(2, 2, 3.5);
        assert_eq!(f.sum(), 14.0);
        let s = Tensor::scalar(7.0);
        assert_eq!(s.item(), 7.0);
        let v = Tensor::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), Shape::new(3, 1));
        let i = Tensor::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Tensor::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[7.0, 12.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // larger logits get larger probabilities
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_values() {
        let a = Tensor::from_rows(&[&[1000.0, 1001.0]]);
        let s = a.softmax_rows();
        assert!(!s.has_non_finite());
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_stability_and_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn row_access() {
        let mut a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
        assert_eq!(a.row_dot(0, &a, 1), 1.0 * 3.0 + 9.0 * 4.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
