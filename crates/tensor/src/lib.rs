//! # kgag-tensor
//!
//! Dense tensors, reverse-mode automatic differentiation and first-order
//! optimizers, written from scratch for the KGAG reproduction (Rust has no
//! mature GNN/autodiff ecosystem to lean on).
//!
//! The crate is organised around four ideas:
//!
//! * [`Tensor`] — a dense, row-major, 2-D `f32` tensor with plain math
//!   (matmul, elementwise maps, reductions). Vectors are `[n, 1]` tensors.
//! * [`ParamStore`] — a named collection of trainable tensors addressed by
//!   cheap [`ParamId`] handles.
//! * [`Tape`] — a reverse-mode autodiff tape. Every operation appends a
//!   node; [`Tape::backward`] walks the nodes in reverse and produces a
//!   [`Gradients`] map from `ParamId` to dense gradient tensors. Besides the
//!   usual dense ops the tape has the *grouped* operations that make
//!   receptive-field GNN computation and group attention cheap:
//!   `softmax_groups`, `group_weighted_sum`, `group_mean`, `repeat_rows`
//!   and `peer_concat`.
//! * [`optim`] — `Sgd`, `Adam` and `AdaGrad` optimizers over a
//!   `ParamStore`, with optional L2 weight decay (the λ‖Θ‖² term of the
//!   paper's Eq. 20).
//! * [`pool`] — a std-only deterministic thread pool (`KGAG_THREADS`)
//!   that the hot kernels here and in the downstream crates use for
//!   within-op parallelism with bit-identical results at any thread
//!   count.
//!
//! ```
//! use kgag_tensor::{ParamStore, Tape, Tensor, init, optim::{Adam, Optimizer}};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Tensor::zeros(2, 1));
//! // minimise ‖x·w − y‖² for a fixed x, y
//! let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let y = Tensor::from_rows(&[&[5.0], &[11.0]]);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..2000 {
//!     let mut tape = Tape::new(&store);
//!     let xw = {
//!         let xc = tape.constant(x.clone());
//!         let wn = tape.param(w);
//!         tape.matmul(xc, wn)
//!     };
//!     let yc = tape.constant(y.clone());
//!     let diff = tape.sub(xw, yc);
//!     let sq = tape.mul(diff, diff);
//!     let loss = tape.mean_all(sq);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut store, &grads);
//! }
//! let learned = store.value(w);
//! assert!((learned.data()[0] - 1.0).abs() < 5e-2);
//! assert!((learned.data()[1] - 2.0).abs() < 5e-2);
//! ```

pub mod checkpoint;
pub mod cmp;
pub mod infer;
pub mod init;
pub mod optim;
pub mod params;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use params::{Gradients, ParamId, ParamStore};
pub use shape::Shape;
pub use tape::{NodeId, Tape};
pub use tensor::Tensor;
