//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (initializers, samplers,
//! dataset generators, training shuffles, property tests) takes an
//! explicit seed so that experiments are reproducible run-to-run.
//! [`SplitMix64`] is the single RNG of the entire workspace — cheap and
//! allocation-free for hot paths such as neighbor sampling, and with no
//! external `rand` dependency the stream is identical on every platform
//! and toolchain. [`derive_seed`] namespaces child streams by label.

/// Derive a child seed from a parent seed and a stream label, so that
/// independent components never share a random stream by accident.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h = parent ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        h ^= h >> 29;
    }
    h
}

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG.
///
/// Used on hot paths (neighbor sampling builds millions of indices per
/// epoch) where constructing a `StdRng` or paying its state size would
/// show up in profiles.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below(0)");
        // Multiplicative range reduction (Lemire); bias is negligible for
        // the bounds used in this workspace (< 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound as u64) >> 32) as usize
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal variate (Box–Muller; one value per call, the
    /// partner draw is discarded for simplicity).
    pub fn next_normal(&mut self) -> f32 {
        let u1 = (self.next_f64().max(1e-12)) as f32;
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (floyd's algorithm when
    /// `k << n`, shuffle otherwise). Returns fewer than `k` only when
    /// `n < k`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            return all;
        }
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            return all;
        }
        // Floyd's algorithm: O(k) expected draws.
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_below(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut r = SplitMix64::new(11);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.next_normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = SplitMix64::new(5);
        for (n, k) in [(100, 5), (10, 10), (10, 3), (8, 20), (1000, 10)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k.min(n));
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), s.len(), "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn derive_seed_varies_by_label_and_parent() {
        let a = derive_seed(1, "sampler");
        let b = derive_seed(1, "init");
        let c = derive_seed(2, "sampler");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, "sampler"));
    }

    #[test]
    fn stream_is_stable_across_versions() {
        // pin the first draws of a known seed: checkpointed experiments
        // and reported property-failure seeds rely on this stream never
        // changing (see DESIGN.md §"Hermetic builds & determinism")
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        let mut r = SplitMix64::new(42);
        assert_eq!(r.next_u64(), 0xbdd732262feb6e95);
    }
}
