//! Weight initializers.
//!
//! All initializers are deterministic given a seed; the KGAG trainer
//! derives one child seed per parameter name so adding a parameter never
//! perturbs the initialization of the others.

use crate::rng::SplitMix64;
use crate::tensor::Tensor;

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f32, seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let data = (0..rows * cols).map(|_| (rng.next_f32() * 2.0 - 1.0) * limit).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Normal initialization with the given standard deviation.
pub fn normal(rows: usize, cols: usize, std: f32, seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let data = (0..rows * cols).map(|_| rng.next_normal() * std).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The default for every dense layer and embedding table in the KGAG
/// model, matching the common initialization of the KGCN/KGAT reference
/// implementations.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, limit, seed)
}

/// He/Kaiming normal: `std = sqrt(2 / fan_in)`; suited to ReLU layers
/// (the peer-influence MLP).
pub fn he_normal(rows: usize, cols: usize, seed: u64) -> Tensor {
    let std = (2.0 / rows as f32).sqrt();
    normal(rows, cols, std, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_limit() {
        let t = uniform(50, 20, 0.3, 1);
        assert!(t.data().iter().all(|x| x.abs() <= 0.3));
        // not degenerate
        assert!(t.data().iter().any(|x| x.abs() > 0.01));
    }

    #[test]
    fn xavier_limit_formula() {
        let t = xavier_uniform(64, 64, 2);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn normal_std_is_close() {
        let t = normal(100, 100, 0.5, 3);
        let mean = t.mean();
        let var =
            t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.data().len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.03, "std {}", var.sqrt());
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let narrow = he_normal(4, 1000, 4);
        let wide = he_normal(400, 1000, 4);
        let std = |t: &Tensor| {
            let m = t.mean();
            (t.data().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / t.data().len() as f32).sqrt()
        };
        assert!(std(&narrow) > std(&wide) * 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(xavier_uniform(8, 8, 7), xavier_uniform(8, 8, 7));
        assert_ne!(xavier_uniform(8, 8, 7), xavier_uniform(8, 8, 8));
    }
}
