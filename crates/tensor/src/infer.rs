//! Fused f32 inference kernels over cache-blocked tables.
//!
//! The tape engine ([`crate::Tape`]) is the *exact* scoring tier: every
//! op materialises its output tensor and records backward bookkeeping,
//! which is what training and the bit-identity oracles need. Serving
//! needs none of it — a ranking forward is a pure gather → propagate →
//! dot pipeline — so this module provides the second tier: embedding
//! tables rehomed into a cache-blocked layout ([`BlockedTable`]) plus
//! fused kernels that run the same math with no tape, no intermediate
//! tensor allocation and no materialised `repeat_rows`/`peer_concat`
//! copies.
//!
//! Three properties the kernels guarantee (and the property suite in
//! `tests/infer_props.rs` enforces):
//!
//! * **Per-row purity.** Every kernel computes output row `i` from its
//!   own input rows only, so chunking a batch across the pool is
//!   value-neutral — the same invariant the exact tier's batched path
//!   relies on (DESIGN.md §11), now extended to the f32 tier.
//! * **Reference closeness.** Each fused kernel matches a naive f64
//!   evaluation of the same expression within a relative error bound
//!   scaled by the reduction length. Bits may differ from the tape
//!   (fusion reorders sums); ranking-level agreement is enforced one
//!   layer up by the accuracy contract (DESIGN.md §14).
//! * **Sanitised tables.** Table construction accumulates in f64 and
//!   rounds once: non-finite inputs and overflowing products are typed
//!   [`ConvertError`]s, subnormal results flush to zero (so the kernels
//!   never hit the slow denormal path), and padding lanes are zero.

use crate::tensor::softmax_inplace;

/// Floats per cache block: rows are padded to a multiple of this, so a
/// 64-byte line never straddles two rows and gathers stay aligned.
pub const BLOCK_FLOATS: usize = 16;

/// Typed failure of a table conversion — the input parameter tensor is
/// unusable for serving and the caller must keep the exact tier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConvertError {
    /// The source value was already NaN or ±∞.
    NonFinite {
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
    },
    /// The scaled value left f32 range (finite in, ±∞ out).
    Overflow {
        /// Row of the offending element.
        row: usize,
        /// Column of the offending element.
        col: usize,
        /// The scaled f64 value that failed to round into f32 range.
        value: f64,
    },
    /// The scoring configuration has no fused-kernel plan at all (e.g.
    /// a propagation backend without f32 kernels); the payload names
    /// the unsupported configuration.
    Unsupported(&'static str),
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::NonFinite { row, col } => {
                write!(f, "non-finite table element at [{row}, {col}]")
            }
            ConvertError::Overflow { row, col, value } => {
                write!(f, "table element at [{row}, {col}] overflows f32: {value:e}")
            }
            ConvertError::Unsupported(what) => {
                write!(f, "no fused f32 kernels for '{what}'")
            }
        }
    }
}

impl std::error::Error for ConvertError {}

/// A dense `[rows, dim]` matrix with every row padded to a
/// [`BLOCK_FLOATS`] boundary — the gather-friendly layout the fused
/// kernels read. Padding lanes are zero, so a full-stride dot over a
/// row is identical to a `dim`-length one.
#[derive(Clone, Debug)]
pub struct BlockedTable {
    rows: usize,
    dim: usize,
    stride: usize,
    data: Vec<f32>,
}

impl BlockedTable {
    /// Build from a row-major `[rows, dim]` f32 slice, scaling every
    /// element by `scale` in f64 before rounding back to f32 once —
    /// the one place the pipeline converts precision, so it is also
    /// where sanitisation lives: non-finite inputs and overflowing
    /// results are errors, subnormal results flush to zero.
    pub fn from_rows_scaled(
        rows: usize,
        dim: usize,
        src: &[f32],
        scale: f64,
    ) -> Result<Self, ConvertError> {
        assert_eq!(src.len(), rows * dim, "source length must be rows x dim");
        let stride = blocked_stride(dim);
        let mut data = vec![0.0f32; rows * stride];
        for r in 0..rows {
            for c in 0..dim {
                let x = src[r * dim + c];
                if !x.is_finite() {
                    return Err(ConvertError::NonFinite { row: r, col: c });
                }
                let scaled = x as f64 * scale;
                let v = scaled as f32;
                if !v.is_finite() {
                    return Err(ConvertError::Overflow { row: r, col: c, value: scaled });
                }
                data[r * stride + c] = flush_subnormal(v);
            }
        }
        Ok(BlockedTable { rows, dim, stride, data })
    }

    /// Unscaled conversion (`scale = 1`): sanitisation only.
    pub fn from_rows(rows: usize, dim: usize, src: &[f32]) -> Result<Self, ConvertError> {
        Self::from_rows_scaled(rows, dim, src, 1.0)
    }

    /// Number of logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical row width (padding excluded).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Physical floats per row (a [`BLOCK_FLOATS`] multiple).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Resident size in bytes, padding included — what the roofline
    /// bench reports as table traffic.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// One logical row (padding excluded).
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.stride..r * self.stride + self.dim]
    }

    /// Gather `ids` into a dense unpadded `[ids.len(), dim]` buffer
    /// (cleared and refilled — callers reuse the allocation across
    /// chunks).
    pub fn gather_into(&self, ids: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(ids.len() * self.dim);
        for &id in ids {
            out.extend_from_slice(self.row(id as usize));
        }
    }
}

/// Sanitise a dense row-major `[rows, dim]` buffer without re-laying it
/// out — the conversion path for the small weight matrices that are
/// streamed whole (no gather) and so gain nothing from padding. Same
/// checks and subnormal flush as [`BlockedTable::from_rows`].
pub fn sanitize_dense(rows: usize, dim: usize, src: &[f32]) -> Result<Vec<f32>, ConvertError> {
    assert_eq!(src.len(), rows * dim, "source length must be rows x dim");
    let mut out = Vec::with_capacity(src.len());
    for (i, &x) in src.iter().enumerate() {
        if !x.is_finite() {
            return Err(ConvertError::NonFinite { row: i / dim, col: i % dim });
        }
        out.push(flush_subnormal(x));
    }
    Ok(out)
}

/// Row stride for a logical width: `dim` rounded up to a
/// [`BLOCK_FLOATS`] multiple.
pub fn blocked_stride(dim: usize) -> usize {
    dim.div_ceil(BLOCK_FLOATS) * BLOCK_FLOATS
}

/// Flush subnormals to zero so the kernels stay off the denormal slow
/// path; normals (and ±0) pass through unchanged.
#[inline]
pub fn flush_subnormal(x: f32) -> f32 {
    if x != 0.0 && x.abs() < f32::MIN_POSITIVE {
        0.0
    } else {
        x
    }
}

/// Fused gather + row-dot with an implicit row repeat:
/// `out[i] = table.row(ids[i]) · query.row(i / rep)` where `query` is a
/// dense `[ids.len() / rep, dim]` buffer. This is the tape's
/// `repeat_rows` → `gather_row_dot` pair without materialising the
/// repeated query (the tape path copies `ids.len()` full rows first).
pub fn gather_row_dot_rep(
    table: &BlockedTable,
    ids: &[u32],
    query: &[f32],
    dim: usize,
    rep: usize,
    out: &mut Vec<f32>,
) {
    assert!(rep > 0, "repeat factor must be positive");
    assert_eq!(ids.len() % rep, 0, "ids must be a whole number of repeats");
    assert_eq!(query.len(), ids.len() / rep * dim, "query rows must be ids / rep");
    out.clear();
    out.reserve(ids.len());
    for (i, &id) in ids.iter().enumerate() {
        let q = &query[(i / rep) * dim..(i / rep + 1) * dim];
        out.push(dot_f32(table.row(id as usize), q));
    }
}

/// In-place softmax over consecutive `group`-sized blocks — the same
/// per-block routine the tape uses, applied without the output clone.
pub fn softmax_groups_inplace(xs: &mut [f32], group: usize) {
    assert!(group > 0, "group must be positive");
    assert_eq!(xs.len() % group, 0, "length must be a multiple of group");
    for block in xs.chunks_mut(group) {
        softmax_inplace(block);
    }
}

/// Per-block weighted sum: `out.row(g) = Σ_k w[g·group + k] ·
/// values.row(g·group + k)` for dense `[n·group, dim]` values. Zero
/// weights skip their row (the tape does the same — a pruned row must
/// not inject NaN·0).
pub fn group_weighted_sum(
    weights: &[f32],
    values: &[f32],
    dim: usize,
    group: usize,
    out: &mut Vec<f32>,
) {
    assert!(group > 0, "group must be positive");
    assert_eq!(weights.len() % group, 0, "weights must be a multiple of group");
    assert_eq!(values.len(), weights.len() * dim, "values rows must match weights");
    let n = weights.len() / group;
    out.clear();
    out.resize(n * dim, 0.0);
    for g in 0..n {
        let acc = &mut out[g * dim..(g + 1) * dim];
        for k in 0..group {
            let w = weights[g * group + k];
            if w == 0.0 {
                continue;
            }
            let row = &values[(g * group + k) * dim..(g * group + k + 1) * dim];
            for (o, &v) in acc.iter_mut().zip(row) {
                *o += w * v;
            }
        }
    }
}

/// Per-block mean of dense `[n·group, dim]` values —
/// `out.row(g) = (1/group) · Σ_k values.row(g·group + k)`, accumulated
/// then scaled like the tape's `group_mean`.
pub fn group_mean(values: &[f32], dim: usize, group: usize, out: &mut Vec<f32>) {
    assert!(group > 0, "group must be positive");
    assert_eq!(values.len() % (group * dim), 0, "values must be whole blocks");
    let n = values.len() / (group * dim);
    let inv = 1.0 / group as f32;
    out.clear();
    out.resize(n * dim, 0.0);
    for g in 0..n {
        let acc = &mut out[g * dim..(g + 1) * dim];
        for k in 0..group {
            let row = &values[(g * group + k) * dim..(g * group + k + 1) * dim];
            for (o, &v) in acc.iter_mut().zip(row) {
                *o += v;
            }
        }
        for o in acc.iter_mut() {
            *o *= inv;
        }
    }
}

/// Epilogue activation of a fused matmul.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity — bias only.
    None,
    /// `max(0, x)` (hidden propagation layers).
    Relu,
    /// `tanh(x)` (the last propagation layer).
    Tanh,
}

#[inline]
fn activate(x: f32, act: Activation) -> f32 {
    match act {
        Activation::None => x,
        Activation::Relu => x.max(0.0),
        Activation::Tanh => x.tanh(),
    }
}

/// Fused `out = act(a · w + bias)` for dense row-major `a
/// [rows, d_in]`, `w [d_in, d_out]`, `bias [d_out]`. Same i-k-j loop
/// order (and zero-skip) as the tape matmul, with the bias-add and
/// activation folded into the row epilogue instead of three extra
/// tensor passes. Each output row reads only its own `a` row.
pub fn matmul_bias_act(
    a: &[f32],
    rows: usize,
    d_in: usize,
    w: &[f32],
    d_out: usize,
    bias: &[f32],
    act: Activation,
    out: &mut Vec<f32>,
) {
    assert_eq!(a.len(), rows * d_in, "lhs length must be rows x d_in");
    assert_eq!(w.len(), d_in * d_out, "weight length must be d_in x d_out");
    assert_eq!(bias.len(), d_out, "bias length must be d_out");
    out.clear();
    out.resize(rows * d_out, 0.0);
    for i in 0..rows {
        let out_row = &mut out[i * d_out..(i + 1) * d_out];
        accumulate_row(&a[i * d_in..(i + 1) * d_in], w, d_out, out_row);
        for (o, &b) in out_row.iter_mut().zip(bias) {
            *o = activate(*o + b, act);
        }
    }
}

/// Fused split form of the GraphSage concat matmul:
/// `out = act(a · w_a + b · w_b + bias)` ≡
/// `act(CONCAT(a, b) · [w_a; w_b] + bias)` without materialising the
/// `[rows, 2·d_in]` concatenation. Summation runs `w_a` products first,
/// then `w_b` — the same element order as the concatenated dot.
#[allow(clippy::too_many_arguments)]
pub fn matmul2_bias_act(
    a: &[f32],
    b: &[f32],
    rows: usize,
    d_in: usize,
    w_a: &[f32],
    w_b: &[f32],
    d_out: usize,
    bias: &[f32],
    act: Activation,
    out: &mut Vec<f32>,
) {
    assert_eq!(a.len(), rows * d_in, "lhs a length must be rows x d_in");
    assert_eq!(b.len(), rows * d_in, "lhs b length must be rows x d_in");
    assert_eq!(w_a.len(), d_in * d_out, "w_a length must be d_in x d_out");
    assert_eq!(w_b.len(), d_in * d_out, "w_b length must be d_in x d_out");
    assert_eq!(bias.len(), d_out, "bias length must be d_out");
    out.clear();
    out.resize(rows * d_out, 0.0);
    for i in 0..rows {
        let out_row = &mut out[i * d_out..(i + 1) * d_out];
        accumulate_row(&a[i * d_in..(i + 1) * d_in], w_a, d_out, out_row);
        accumulate_row(&b[i * d_in..(i + 1) * d_in], w_b, d_out, out_row);
        for (o, &bb) in out_row.iter_mut().zip(bias) {
            *o = activate(*o + bb, act);
        }
    }
}

/// `out_row += a_row · w` — the shared i-k-j inner kernel.
#[inline]
pub fn accumulate_row(a_row: &[f32], w: &[f32], d_out: usize, out_row: &mut [f32]) {
    debug_assert_eq!(w.len(), a_row.len() * d_out);
    debug_assert_eq!(out_row.len(), d_out);
    for (kk, &x) in a_row.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        let w_row = &w[kk * d_out..(kk + 1) * d_out];
        for (o, &wv) in out_row.iter_mut().zip(w_row) {
            *o += x * wv;
        }
    }
}

/// Elementwise `out = a + b` over equal-length buffers.
pub fn add_into(a: &[f32], b: &[f32], out: &mut Vec<f32>) {
    assert_eq!(a.len(), b.len(), "operand lengths must match");
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x + y));
}

/// Residual combine in place: `acc[i] = e0[i] + gamma · acc[i]`.
pub fn residual_inplace(e0: &[f32], gamma: f32, acc: &mut [f32]) {
    assert_eq!(e0.len(), acc.len(), "operand lengths must match");
    for (a, &e) in acc.iter_mut().zip(e0) {
        *a = e + gamma * *a;
    }
}

/// Row-wise dot of two dense `[n, dim]` buffers, scaled:
/// `out[i] = scale · (a.row(i) · b.row(i / rep))` — `rep > 1` folds the
/// tape's `repeat_rows(b)` into the index instead of a copy.
pub fn row_dot_rep_scaled(
    a: &[f32],
    b: &[f32],
    dim: usize,
    rep: usize,
    scale: f32,
    out: &mut Vec<f32>,
) {
    assert!(rep > 0, "repeat factor must be positive");
    assert_eq!(a.len() % dim, 0, "a must be whole rows");
    let n = a.len() / dim;
    assert_eq!(n % rep, 0, "rows must be a whole number of repeats");
    assert_eq!(b.len(), n / rep * dim, "b rows must be a / rep");
    out.clear();
    out.reserve(n);
    for i in 0..n {
        let ar = &a[i * dim..(i + 1) * dim];
        let br = &b[(i / rep) * dim..(i / rep + 1) * dim];
        out.push(scale * dot_f32(ar, br));
    }
}

/// Sequential f32 dot — identical element order to the tape's
/// `row_dot`, so the two tiers differ only where fusion reorders sums.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_stride_rounds_up() {
        assert_eq!(blocked_stride(1), 16);
        assert_eq!(blocked_stride(16), 16);
        assert_eq!(blocked_stride(17), 32);
    }

    #[test]
    fn table_rows_are_padded_and_exact() {
        let src: Vec<f32> = (0..6).map(|i| i as f32 + 0.5).collect();
        let t = BlockedTable::from_rows(2, 3, &src).unwrap();
        assert_eq!(t.stride(), 16);
        assert_eq!(t.row(1), &[3.5, 4.5, 5.5]);
        assert_eq!(t.bytes(), 2 * 16 * 4);
    }

    #[test]
    fn conversion_rejects_non_finite() {
        let err = BlockedTable::from_rows(1, 2, &[1.0, f32::NAN]).unwrap_err();
        assert_eq!(err, ConvertError::NonFinite { row: 0, col: 1 });
    }

    #[test]
    fn conversion_rejects_overflow() {
        let err = BlockedTable::from_rows_scaled(1, 1, &[f32::MAX], 1e10).unwrap_err();
        assert!(matches!(err, ConvertError::Overflow { row: 0, col: 0, .. }));
    }

    #[test]
    fn conversion_flushes_subnormals() {
        let sub = f32::MIN_POSITIVE / 2.0;
        let t = BlockedTable::from_rows(1, 2, &[sub, f32::MIN_POSITIVE]).unwrap();
        assert_eq!(t.row(0)[0], 0.0);
        assert_eq!(t.row(0)[1], f32::MIN_POSITIVE);
    }

    #[test]
    fn gather_row_dot_repeats_query_rows() {
        let table = BlockedTable::from_rows(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let query = [2.0, 3.0, 4.0, 5.0]; // two query rows, rep = 2
        let mut out = Vec::new();
        gather_row_dot_rep(&table, &[0, 1, 2, 0], &query, 2, 2, &mut out);
        assert_eq!(out, vec![2.0, 3.0, 9.0, 4.0]);
    }

    #[test]
    fn matmul2_matches_concat_matmul() {
        let (rows, d) = (2, 3);
        let a: Vec<f32> = (0..rows * d).map(|i| i as f32 * 0.25).collect();
        let b: Vec<f32> = (0..rows * d).map(|i| 1.0 - i as f32 * 0.125).collect();
        let w_a: Vec<f32> = (0..d * d).map(|i| (i as f32 - 4.0) * 0.1).collect();
        let w_b: Vec<f32> = (0..d * d).map(|i| (i as f32) * 0.05).collect();
        let bias = [0.1, -0.2, 0.3];
        let mut fused = Vec::new();
        matmul2_bias_act(&a, &b, rows, d, &w_a, &w_b, d, &bias, Activation::None, &mut fused);
        // reference: concat then one matmul
        let mut cat = Vec::new();
        for i in 0..rows {
            cat.extend_from_slice(&a[i * d..(i + 1) * d]);
            cat.extend_from_slice(&b[i * d..(i + 1) * d]);
        }
        let mut w = w_a.clone();
        w.extend_from_slice(&w_b);
        let mut reference = Vec::new();
        matmul_bias_act(&cat, rows, 2 * d, &w, d, &bias, Activation::None, &mut reference);
        assert_eq!(fused, reference);
    }
}
