//! Reverse-mode automatic differentiation.
//!
//! A [`Tape`] is a single-use computation graph: each operation appends a
//! node holding its forward value, and [`Tape::backward`] walks the nodes
//! in reverse topological order (which is simply reverse insertion order)
//! to produce dense per-parameter [`Gradients`].
//!
//! Besides the usual dense ops, the tape provides the *grouped* operations
//! that make receptive-field GNN propagation and fixed-size group
//! attention efficient without padding or masking:
//!
//! * [`Tape::softmax_groups`] — softmax over consecutive blocks of a
//!   column (Eq. 3 and Eq. 12 of the paper);
//! * [`Tape::group_weighted_sum`] — Σₖ wₖ·vₖ within each block (Eq. 1/7
//!   neighbor aggregation, Eq. 13 preference aggregation);
//! * [`Tape::group_mean`] — block mean (the item-side query vector i_e);
//! * [`Tape::repeat_rows`] — broadcast a per-instance query down a
//!   receptive-field level;
//! * [`Tape::peer_concat`] — the `CONCAT(u ∈ S^P_{g,i})` of Eq. 10.

use crate::params::{Gradients, ParamId, ParamStore};
use crate::pool;
use crate::tensor::{dot, par_row_bands, sigmoid, softmax_inplace, Tensor};

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId(u32);

impl NodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Floor used by [`Tape::ln`] to keep logarithms finite.
pub const LN_EPS: f32 = 1e-12;

enum Op {
    Constant,
    Param(ParamId),
    Gather { param: ParamId, rows: Vec<u32> },
    GatherRowDot { param: ParamId, rows: Vec<u32>, other: NodeId },
    MatMul { a: NodeId, b: NodeId },
    Add { a: NodeId, b: NodeId },
    Sub { a: NodeId, b: NodeId },
    Mul { a: NodeId, b: NodeId },
    AddRow { a: NodeId, bias: NodeId },
    Scale { a: NodeId, k: f32 },
    AddScalar { a: NodeId },
    RowDot { a: NodeId, b: NodeId },
    Sigmoid { a: NodeId },
    Relu { a: NodeId },
    Tanh { a: NodeId },
    Ln { a: NodeId },
    SoftmaxGroups { a: NodeId, group: usize },
    GroupWeightedSum { w: NodeId, v: NodeId, group: usize },
    GroupMean { a: NodeId, group: usize },
    RepeatRows { a: NodeId, times: usize },
    PeerConcat { a: NodeId, group: usize },
    ConcatCols { a: NodeId, b: NodeId },
    SumAll { a: NodeId },
    MeanAll { a: NodeId },
    BceWithLogits { logits: NodeId, targets: Tensor },
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A single-use reverse-mode autodiff tape over a [`ParamStore`].
pub struct Tape<'p> {
    store: &'p ParamStore,
    nodes: Vec<Node>,
}

impl<'p> Tape<'p> {
    /// Start an empty tape reading parameter values from `store`.
    pub fn new(store: &'p ParamStore) -> Self {
        Tape { store, nodes: Vec::with_capacity(64) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.index()].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, value });
        id
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// A constant (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Constant, value)
    }

    /// The whole parameter tensor as a node.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let value = self.store.value(id).clone();
        self.push(Op::Param(id), value)
    }

    /// Row lookup (embedding gather): result row `i` is `param.row(rows[i])`.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn gather(&mut self, param: ParamId, rows: &[u32]) -> NodeId {
        let table = self.store.value(param);
        let d = table.cols();
        let n_rows = table.rows();
        if let Some(&bad) = rows.iter().find(|&&r| (r as usize) >= n_rows) {
            panic!(
                "gather row {} out of bounds for parameter {:?} with {} rows",
                bad,
                self.store.name(param),
                n_rows
            );
        }
        let mut data = vec![0.0f32; rows.len() * d];
        par_row_bands(&mut data, rows.len(), d, rows.len() * d, |row0, band| {
            for (local, dst) in band.chunks_mut(d).enumerate() {
                dst.copy_from_slice(table.row(rows[row0 + local] as usize));
            }
        });
        let value = Tensor::from_vec(rows.len(), d, data);
        self.push(Op::Gather { param, rows: rows.to_vec() }, value)
    }

    /// Fused gather + row-wise dot: result `[m, 1]` where row `i` is
    /// `other.row(i) · param.row(rows[i])` — bit-identical to
    /// `row_dot(other, gather(param, rows))` (forward *and* backward:
    /// the per-row products and the scatter into `param` run in the
    /// same order) without ever materialising the `[m, d]` gathered
    /// table rows.
    ///
    /// # Panics
    /// Panics when an index is out of bounds or `other` is not
    /// `[rows.len(), param.cols()]`.
    pub fn gather_row_dot(&mut self, param: ParamId, rows: &[u32], other: NodeId) -> NodeId {
        let table = self.store.value(param);
        let d = table.cols();
        let n_rows = table.rows();
        if let Some(&bad) = rows.iter().find(|&&r| (r as usize) >= n_rows) {
            panic!(
                "gather row {} out of bounds for parameter {:?} with {} rows",
                bad,
                self.store.name(param),
                n_rows
            );
        }
        let ov = &self.nodes[other.index()].value;
        assert_eq!(ov.rows(), rows.len(), "gather_row_dot row-count mismatch");
        assert_eq!(ov.cols(), d, "gather_row_dot width mismatch");
        let m = rows.len();
        let mut data = vec![0.0f32; m];
        // each output element reads only its own pair of rows, so
        // banding is bit-identical to the sequential loop
        par_row_bands(&mut data, m, 1, m * d, |row0, band| {
            for (local, o) in band.iter_mut().enumerate() {
                let i = row0 + local;
                *o = dot(ov.row(i), table.row(rows[i] as usize));
            }
        });
        let value = Tensor::from_vec(m, 1, data);
        self.push(Op::GatherRowDot { param, rows: rows.to_vec(), other }, value)
    }

    // ------------------------------------------------------------------
    // Dense ops
    // ------------------------------------------------------------------

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.matmul(&self.nodes[b.index()].value);
        self.push(Op::MatMul { a, b }, value)
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.add(&self.nodes[b.index()].value);
        self.push(Op::Add { a, b }, value)
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.sub(&self.nodes[b.index()].value);
        self.push(Op::Sub { a, b }, value)
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.mul(&self.nodes[b.index()].value);
        self.push(Op::Mul { a, b }, value)
    }

    /// Add a `[1, c]` bias row to every row of `a` (`[m, c]`).
    pub fn add_row(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let av = &self.nodes[a.index()].value;
        let bv = &self.nodes[bias.index()].value;
        assert_eq!(bv.rows(), 1, "bias must be a [1, c] row, got {:?}", bv.shape());
        assert_eq!(av.cols(), bv.cols(), "add_row width mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bv.data()) {
                *o += b;
            }
        }
        self.push(Op::AddRow { a, bias }, out)
    }

    /// `a * k` elementwise.
    pub fn scale(&mut self, a: NodeId, k: f32) -> NodeId {
        let value = self.nodes[a.index()].value.scale(k);
        self.push(Op::Scale { a, k }, value)
    }

    /// `a + k` elementwise.
    pub fn add_scalar(&mut self, a: NodeId, k: f32) -> NodeId {
        let value = self.nodes[a.index()].value.map(|x| x + k);
        self.push(Op::AddScalar { a }, value)
    }

    /// Row-wise inner product of two `[m, d]` tensors → `[m, 1]`.
    pub fn row_dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let av = &self.nodes[a.index()].value;
        let bv = &self.nodes[b.index()].value;
        assert_eq!(av.shape(), bv.shape(), "row_dot shape mismatch");
        let m = av.rows();
        let mut data = Vec::with_capacity(m);
        for i in 0..m {
            data.push(dot(av.row(i), bv.row(i)));
        }
        self.push(Op::RowDot { a, b }, Tensor::from_vec(m, 1, data))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.map(sigmoid);
        self.push(Op::Sigmoid { a }, value)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.map(|x| x.max(0.0));
        self.push(Op::Relu { a }, value)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.map(f32::tanh);
        self.push(Op::Tanh { a }, value)
    }

    /// Elementwise natural log with inputs clamped to [`LN_EPS`].
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a.index()].value.map(|x| x.max(LN_EPS).ln());
        self.push(Op::Ln { a }, value)
    }

    // ------------------------------------------------------------------
    // Grouped ops (GNN receptive field / group attention)
    // ------------------------------------------------------------------

    /// Softmax over consecutive blocks of `group` rows of a `[m*group, 1]`
    /// column.
    pub fn softmax_groups(&mut self, a: NodeId, group: usize) -> NodeId {
        let av = &self.nodes[a.index()].value;
        assert!(group > 0, "softmax_groups with empty group");
        assert_eq!(av.cols(), 1, "softmax_groups expects a column, got {:?}", av.shape());
        assert_eq!(av.rows() % group, 0, "rows {} not divisible by group {}", av.rows(), group);
        let mut out = av.clone();
        let n_blocks = av.rows() / group;
        // blocks are independent; softmax_inplace per block is unchanged,
        // so banding over blocks is bit-identical to the sequential loop
        par_row_bands(out.data_mut(), n_blocks, group, av.rows(), |_, band| {
            for chunk in band.chunks_mut(group) {
                softmax_inplace(chunk);
            }
        });
        self.push(Op::SoftmaxGroups { a, group }, out)
    }

    /// Block-wise weighted sum: with `w: [m*group, 1]` and
    /// `v: [m*group, d]`, output row `i` is `Σ_k w[i*group+k] · v[i*group+k]`.
    pub fn group_weighted_sum(&mut self, w: NodeId, v: NodeId, group: usize) -> NodeId {
        let wv = &self.nodes[w.index()].value;
        let vv = &self.nodes[v.index()].value;
        assert!(group > 0, "group_weighted_sum with empty group");
        assert_eq!(wv.cols(), 1, "weights must be a column");
        assert_eq!(wv.rows(), vv.rows(), "weights/values row mismatch");
        assert_eq!(vv.rows() % group, 0, "rows not divisible by group");
        let m = vv.rows() / group;
        let d = vv.cols();
        let mut out = Tensor::zeros(m, d);
        par_row_bands(out.data_mut(), m, d, vv.rows() * d, |row0, band| {
            for (local, out_row) in band.chunks_mut(d).enumerate() {
                let i = row0 + local;
                for k in 0..group {
                    let idx = i * group + k;
                    let wk = wv.data()[idx];
                    if wk == 0.0 {
                        continue;
                    }
                    for (o, &x) in out_row.iter_mut().zip(vv.row(idx)) {
                        *o += wk * x;
                    }
                }
            }
        });
        self.push(Op::GroupWeightedSum { w, v, group }, out)
    }

    /// Block mean: `[m*group, d]` → `[m, d]`.
    pub fn group_mean(&mut self, a: NodeId, group: usize) -> NodeId {
        let av = &self.nodes[a.index()].value;
        assert!(group > 0, "group_mean with empty group");
        assert_eq!(av.rows() % group, 0, "rows not divisible by group");
        let m = av.rows() / group;
        let d = av.cols();
        let inv = 1.0 / group as f32;
        let mut out = Tensor::zeros(m, d);
        for i in 0..m {
            let out_row = out.row_mut(i);
            for k in 0..group {
                for (o, &x) in out_row.iter_mut().zip(av.row(i * group + k)) {
                    *o += x * inv;
                }
            }
        }
        self.push(Op::GroupMean { a, group }, out)
    }

    /// Repeat each row `times` times consecutively: `[m, d]` → `[m*times, d]`.
    pub fn repeat_rows(&mut self, a: NodeId, times: usize) -> NodeId {
        assert!(times > 0, "repeat_rows with times == 0");
        let av = &self.nodes[a.index()].value;
        let (m, d) = (av.rows(), av.cols());
        let mut data = Vec::with_capacity(m * times * d);
        for i in 0..m {
            for _ in 0..times {
                data.extend_from_slice(av.row(i));
            }
        }
        self.push(Op::RepeatRows { a, times }, Tensor::from_vec(m * times, d, data))
    }

    /// For each block of `group` rows, output row `j` is the concatenation
    /// of the other `group-1` rows of the block in ascending order:
    /// `[m*group, d]` → `[m*group, (group-1)*d]`. This is the
    /// `CONCAT(u ∈ S^P_{g,i})` of Eq. 10.
    ///
    /// # Panics
    /// Panics when `group < 2` (a singleton has no peers).
    pub fn peer_concat(&mut self, a: NodeId, group: usize) -> NodeId {
        assert!(group >= 2, "peer_concat needs groups of at least 2 members");
        let av = &self.nodes[a.index()].value;
        assert_eq!(av.rows() % group, 0, "rows not divisible by group");
        let m = av.rows() / group;
        let d = av.cols();
        let out_cols = (group - 1) * d;
        let mut data = Vec::with_capacity(m * group * out_cols);
        for i in 0..m {
            for j in 0..group {
                for k in 0..group {
                    if k != j {
                        data.extend_from_slice(av.row(i * group + k));
                    }
                }
            }
        }
        self.push(Op::PeerConcat { a, group }, Tensor::from_vec(m * group, out_cols, data))
    }

    /// Horizontal concatenation: `[m, c1] ‖ [m, c2]` → `[m, c1+c2]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let av = &self.nodes[a.index()].value;
        let bv = &self.nodes[b.index()].value;
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let m = av.rows();
        let (c1, c2) = (av.cols(), bv.cols());
        let mut data = Vec::with_capacity(m * (c1 + c2));
        for i in 0..m {
            data.extend_from_slice(av.row(i));
            data.extend_from_slice(bv.row(i));
        }
        self.push(Op::ConcatCols { a, b }, Tensor::from_vec(m, c1 + c2, data))
    }

    // ------------------------------------------------------------------
    // Reductions and losses
    // ------------------------------------------------------------------

    /// Sum of all elements → `[1, 1]`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let value = Tensor::scalar(self.nodes[a.index()].value.sum());
        self.push(Op::SumAll { a }, value)
    }

    /// Mean of all elements → `[1, 1]`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let value = Tensor::scalar(self.nodes[a.index()].value.mean());
        self.push(Op::MeanAll { a }, value)
    }

    /// Numerically-stable per-example binary cross-entropy with logits:
    /// output `[m, 1]` where row `i` is
    /// `max(x,0) − x·y + ln(1+exp(−|x|))` for logit `x = logits[i]` and
    /// constant target `y = targets[i] ∈ [0,1]`.
    pub fn bce_with_logits(&mut self, logits: NodeId, targets: Tensor) -> NodeId {
        let lv = &self.nodes[logits.index()].value;
        assert_eq!(lv.shape(), targets.shape(), "bce shape mismatch");
        assert_eq!(lv.cols(), 1, "bce expects a column of logits");
        let data: Vec<f32> = lv
            .data()
            .iter()
            .zip(targets.data())
            .map(|(&x, &y)| x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln())
            .collect();
        let value = Tensor::from_vec(lv.rows(), 1, data);
        self.push(Op::BceWithLogits { logits, targets }, value)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse pass from a scalar `loss` node. Returns dense gradients for
    /// every parameter that participated in the tape.
    ///
    /// # Panics
    /// Panics when `loss` is not `[1, 1]`.
    pub fn backward(&self, loss: NodeId) -> Gradients {
        assert!(
            self.nodes[loss.index()].value.shape().is_scalar(),
            "backward() needs a scalar loss, got {:?}",
            self.nodes[loss.index()].value.shape()
        );
        let mut node_grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        node_grads[loss.index()] = Some(Tensor::scalar(1.0));
        let mut grads = Gradients::new();

        for idx in (0..self.nodes.len()).rev() {
            let Some(g) = node_grads[idx].take() else { continue };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Constant => {}
                Op::Param(pid) => {
                    grads.accumulate(*pid, g.shape(), |t| t.axpy(1.0, &g));
                }
                Op::Gather { param, rows } => {
                    let shape = self.store.shape(*param);
                    grads.accumulate(*param, shape, |t| scatter_add_rows(t, rows, &g));
                }
                Op::GatherRowDot { param, rows, other } => {
                    let table = self.store.value(*param);
                    let ov = &self.nodes[other.index()].value;
                    let (m, d) = (ov.rows(), ov.cols());
                    // same products and the same scatter path as the
                    // row_dot + gather composite, so gradients match it
                    // bit for bit
                    let mut d_other = Tensor::zeros(m, d);
                    let mut d_rows = Tensor::zeros(m, d);
                    for i in 0..m {
                        let gi = g.data()[i];
                        for ((x, y), (&tx, &ox)) in d_other
                            .row_mut(i)
                            .iter_mut()
                            .zip(d_rows.row_mut(i).iter_mut())
                            .zip(table.row(rows[i] as usize).iter().zip(ov.row(i)))
                        {
                            *x = gi * tx;
                            *y = gi * ox;
                        }
                    }
                    accumulate_node(&mut node_grads, *other, d_other);
                    let shape = self.store.shape(*param);
                    grads.accumulate(*param, shape, |t| scatter_add_rows(t, rows, &d_rows));
                }
                Op::MatMul { a, b } => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let da = g.matmul_nt(bv);
                    let db = av.matmul_tn(&g);
                    accumulate_node(&mut node_grads, *a, da);
                    accumulate_node(&mut node_grads, *b, db);
                }
                Op::Add { a, b } => {
                    accumulate_node(&mut node_grads, *a, g.clone());
                    accumulate_node(&mut node_grads, *b, g);
                }
                Op::Sub { a, b } => {
                    accumulate_node(&mut node_grads, *b, g.scale(-1.0));
                    accumulate_node(&mut node_grads, *a, g);
                }
                Op::Mul { a, b } => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    accumulate_node(&mut node_grads, *a, g.mul(bv));
                    accumulate_node(&mut node_grads, *b, g.mul(av));
                }
                Op::AddRow { a, bias } => {
                    let cols = g.cols();
                    let mut db = Tensor::zeros(1, cols);
                    for r in 0..g.rows() {
                        for (d, &s) in db.data_mut().iter_mut().zip(g.row(r)) {
                            *d += s;
                        }
                    }
                    accumulate_node(&mut node_grads, *bias, db);
                    accumulate_node(&mut node_grads, *a, g);
                }
                Op::Scale { a, k } => {
                    accumulate_node(&mut node_grads, *a, g.scale(*k));
                }
                Op::AddScalar { a } => {
                    accumulate_node(&mut node_grads, *a, g);
                }
                Op::RowDot { a, b } => {
                    let av = &self.nodes[a.index()].value;
                    let bv = &self.nodes[b.index()].value;
                    let (m, d) = (av.rows(), av.cols());
                    let mut da = Tensor::zeros(m, d);
                    let mut db = Tensor::zeros(m, d);
                    for i in 0..m {
                        let gi = g.data()[i];
                        for ((x, y), (&bx, &ax)) in da
                            .row_mut(i)
                            .iter_mut()
                            .zip(db.row_mut(i).iter_mut())
                            .zip(bv.row(i).iter().zip(av.row(i)))
                        {
                            *x = gi * bx;
                            *y = gi * ax;
                        }
                    }
                    accumulate_node(&mut node_grads, *a, da);
                    accumulate_node(&mut node_grads, *b, db);
                }
                Op::Sigmoid { a } => {
                    let da = g.zip(&node.value, |gi, s| gi * s * (1.0 - s));
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::Relu { a } => {
                    let da = g.zip(&node.value, |gi, o| if o > 0.0 { gi } else { 0.0 });
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::Tanh { a } => {
                    let da = g.zip(&node.value, |gi, t| gi * (1.0 - t * t));
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::Ln { a } => {
                    let av = &self.nodes[a.index()].value;
                    let da = g.zip(av, |gi, x| gi / x.max(LN_EPS));
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::SoftmaxGroups { a, group } => {
                    let s = &node.value;
                    let mut da = Tensor::zeros(s.rows(), 1);
                    let group = *group;
                    let n_blocks = s.rows() / group;
                    par_row_bands(da.data_mut(), n_blocks, group, s.rows(), |blk0, band| {
                        for (local, chunk) in band.chunks_mut(group).enumerate() {
                            let base = (blk0 + local) * group;
                            let mut inner = 0.0f32;
                            for k in 0..group {
                                inner += g.data()[base + k] * s.data()[base + k];
                            }
                            for (k, x) in chunk.iter_mut().enumerate() {
                                *x = s.data()[base + k] * (g.data()[base + k] - inner);
                            }
                        }
                    });
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::GroupWeightedSum { w, v, group } => {
                    let wv = &self.nodes[w.index()].value;
                    let vv = &self.nodes[v.index()].value;
                    let group = *group;
                    let m = vv.rows() / group;
                    let d = vv.cols();
                    let mut dw = Tensor::zeros(vv.rows(), 1);
                    let mut dv = Tensor::zeros(vv.rows(), d);
                    // both gradients partition by block; each block writes
                    // its own group-row slice, so banding is value-neutral
                    par_row_bands(dw.data_mut(), m, group, vv.rows() * d, |blk0, band| {
                        for (local, wchunk) in band.chunks_mut(group).enumerate() {
                            let i = blk0 + local;
                            let go = g.row(i);
                            for (k, x) in wchunk.iter_mut().enumerate() {
                                *x = dot(go, vv.row(i * group + k));
                            }
                        }
                    });
                    par_row_bands(dv.data_mut(), m, group * d, vv.rows() * d, |blk0, band| {
                        for (local, vchunk) in band.chunks_mut(group * d).enumerate() {
                            let i = blk0 + local;
                            let go = g.row(i);
                            for k in 0..group {
                                let wk = wv.data()[i * group + k];
                                for (x, &s) in vchunk[k * d..(k + 1) * d].iter_mut().zip(go) {
                                    *x = wk * s;
                                }
                            }
                        }
                    });
                    accumulate_node(&mut node_grads, *w, dw);
                    accumulate_node(&mut node_grads, *v, dv);
                }
                Op::GroupMean { a, group } => {
                    let group = *group;
                    let m = g.rows();
                    let d = g.cols();
                    let inv = 1.0 / group as f32;
                    let mut da = Tensor::zeros(m * group, d);
                    for i in 0..m {
                        let go = g.row(i);
                        for k in 0..group {
                            for (x, &s) in da.row_mut(i * group + k).iter_mut().zip(go) {
                                *x = s * inv;
                            }
                        }
                    }
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::RepeatRows { a, times } => {
                    let times = *times;
                    let m = g.rows() / times;
                    let d = g.cols();
                    let mut da = Tensor::zeros(m, d);
                    for i in 0..m {
                        let dst = da.row_mut(i);
                        for t in 0..times {
                            for (x, &s) in dst.iter_mut().zip(g.row(i * times + t)) {
                                *x += s;
                            }
                        }
                    }
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::PeerConcat { a, group } => {
                    let group = *group;
                    let av = &self.nodes[a.index()].value;
                    let d = av.cols();
                    let m = av.rows() / group;
                    let mut da = Tensor::zeros(av.rows(), d);
                    for i in 0..m {
                        for j in 0..group {
                            let g_row = g.row(i * group + j);
                            let mut seg = 0;
                            for k in 0..group {
                                if k == j {
                                    continue;
                                }
                                let src = &g_row[seg * d..(seg + 1) * d];
                                let dst = da.row_mut(i * group + k);
                                for (x, &s) in dst.iter_mut().zip(src) {
                                    *x += s;
                                }
                                seg += 1;
                            }
                        }
                    }
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::ConcatCols { a, b } => {
                    let c1 = self.nodes[a.index()].value.cols();
                    let c2 = self.nodes[b.index()].value.cols();
                    let m = g.rows();
                    let mut da = Tensor::zeros(m, c1);
                    let mut db = Tensor::zeros(m, c2);
                    for i in 0..m {
                        da.row_mut(i).copy_from_slice(&g.row(i)[..c1]);
                        db.row_mut(i).copy_from_slice(&g.row(i)[c1..]);
                    }
                    accumulate_node(&mut node_grads, *a, da);
                    accumulate_node(&mut node_grads, *b, db);
                }
                Op::SumAll { a } => {
                    let av = &self.nodes[a.index()].value;
                    let da = Tensor::full(av.rows(), av.cols(), g.item());
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::MeanAll { a } => {
                    let av = &self.nodes[a.index()].value;
                    let n = av.shape().len().max(1) as f32;
                    let da = Tensor::full(av.rows(), av.cols(), g.item() / n);
                    accumulate_node(&mut node_grads, *a, da);
                }
                Op::BceWithLogits { logits, targets } => {
                    let lv = &self.nodes[logits.index()].value;
                    let mut da = Tensor::zeros(lv.rows(), 1);
                    for i in 0..lv.rows() {
                        let x = lv.data()[i];
                        let y = targets.data()[i];
                        da.data_mut()[i] = g.data()[i] * (sigmoid(x) - y);
                    }
                    accumulate_node(&mut node_grads, *logits, da);
                }
            }
        }
        grads
    }
}

/// Gather backward: `t.row(rows[i]) += g.row(i)` for every `i`.
///
/// Parallelises over *destination* row bands — each task scans the full
/// index list and accumulates only the rows in its band, so a destination
/// row always receives its contributions in ascending `i` order, exactly
/// like the sequential loop. The redundant scans cost O(threads · len)
/// index comparisons, which is noise next to the O(len · d) adds.
fn scatter_add_rows(t: &mut Tensor, rows: &[u32], g: &Tensor) {
    let d = g.cols();
    let threads = pool::num_threads();
    let dest_rows = t.rows();
    if threads == 1 || dest_rows < 2 || rows.len() * d < 16 * 1024 {
        for (i, &r) in rows.iter().enumerate() {
            for (x, &s) in t.row_mut(r as usize).iter_mut().zip(g.row(i)) {
                *x += s;
            }
        }
        return;
    }
    let band_rows = dest_rows.div_ceil(threads).max(1);
    pool::par_chunks_mut(t.data_mut(), band_rows * d, |ci, band| {
        let lo = ci * band_rows;
        let hi = lo + band.len() / d;
        for (i, &r) in rows.iter().enumerate() {
            let r = r as usize;
            if r < lo || r >= hi {
                continue;
            }
            let dst = &mut band[(r - lo) * d..(r - lo + 1) * d];
            for (x, &s) in dst.iter_mut().zip(g.row(i)) {
                *x += s;
            }
        }
    });
}

fn accumulate_node(node_grads: &mut [Option<Tensor>], id: NodeId, delta: Tensor) {
    match &mut node_grads[id.index()] {
        Some(g) => g.axpy(1.0, &delta),
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::shape::Shape;

    /// Numeric gradient of `f` w.r.t. parameter `pid` by central differences.
    fn numeric_grad(
        store: &mut ParamStore,
        pid: ParamId,
        mut f: impl FnMut(&ParamStore) -> f32,
    ) -> Tensor {
        let eps = 1e-3f32;
        let shape = store.shape(pid);
        let mut out = Tensor::zeros(shape.rows, shape.cols);
        for i in 0..shape.len() {
            let orig = store.value(pid).data()[i];
            store.value_mut(pid).data_mut()[i] = orig + eps;
            let up = f(store);
            store.value_mut(pid).data_mut()[i] = orig - eps;
            let down = f(store);
            store.value_mut(pid).data_mut()[i] = orig;
            out.data_mut()[i] = (up - down) / (2.0 * eps);
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}: element {i}: analytic {x} vs numeric {y}"
            );
        }
    }

    #[test]
    fn matmul_gradients_match_numeric() {
        let mut store = ParamStore::new();
        let a = store.register("a", crate::init::uniform(3, 4, 1.0, 1));
        let b = store.register("b", crate::init::uniform(4, 2, 1.0, 2));
        let f = |s: &ParamStore| {
            let mut t = Tape::new(s);
            let an = t.param(a);
            let bn = t.param(b);
            let c = t.matmul(an, bn);
            let sq = t.mul(c, c);
            t.mean_all(sq);
            t.value(NodeId((t.len() - 1) as u32)).item()
        };
        let mut tape = Tape::new(&store);
        let an = tape.param(a);
        let bn = tape.param(b);
        let c = tape.matmul(an, bn);
        let sq = tape.mul(c, c);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        let na = numeric_grad(&mut store.clone(), a, f);
        let nb = numeric_grad(&mut store.clone(), b, f);
        assert_close(grads.get(a).unwrap(), &na, 2e-2, "dA");
        assert_close(grads.get(b).unwrap(), &nb, 2e-2, "dB");
    }

    #[test]
    fn gather_accumulates_repeated_rows() {
        let mut store = ParamStore::new();
        let e = store.register("e", crate::init::uniform(5, 3, 1.0, 3));
        let mut tape = Tape::new(&store);
        let g = tape.gather(e, &[1, 1, 4]);
        let s = tape.sum_all(g);
        let grads = tape.backward(s);
        let ge = grads.get(e).unwrap();
        // row 1 gathered twice → gradient 2, row 4 once → 1, others 0
        assert!(ge.row(1).iter().all(|&x| x == 2.0));
        assert!(ge.row(4).iter().all(|&x| x == 1.0));
        assert!(ge.row(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gather_row_dot_is_bit_identical_to_composite() {
        let mut store = ParamStore::new();
        let table = store.register("table", crate::init::uniform(7, 5, 1.0, 41));
        let q = store.register("q", crate::init::uniform(6, 5, 1.0, 42));
        let rows: Vec<u32> = vec![3, 0, 3, 6, 1, 3]; // repeats exercise the scatter
        let run = |fused: bool| {
            let mut tape = Tape::new(&store);
            let qn = tape.param(q);
            let d = if fused {
                tape.gather_row_dot(table, &rows, qn)
            } else {
                let gathered = tape.gather(table, &rows);
                tape.row_dot(qn, gathered)
            };
            let sg = tape.sigmoid(d);
            let loss = tape.sum_all(sg);
            let value = tape.value(d).clone();
            (value, tape.backward(loss))
        };
        let (v_fused, g_fused) = run(true);
        let (v_comp, g_comp) = run(false);
        let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&v_fused), bits(&v_comp), "forward");
        assert_eq!(bits(g_fused.get(table).unwrap()), bits(g_comp.get(table).unwrap()), "d_table");
        assert_eq!(bits(g_fused.get(q).unwrap()), bits(g_comp.get(q).unwrap()), "d_q");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_row_dot_checks_bounds() {
        let mut store = ParamStore::new();
        let table = store.register("table", Tensor::zeros(3, 2));
        let mut tape = Tape::new(&store);
        let q = tape.constant(Tensor::zeros(1, 2));
        tape.gather_row_dot(table, &[3], q);
    }

    #[test]
    fn activations_match_numeric() {
        for act in ["sigmoid", "relu", "tanh", "ln"] {
            let mut store = ParamStore::new();
            let p = store.register("p", crate::init::uniform(2, 3, 1.0, 7).map(|x| x + 1.5));
            let run = |s: &ParamStore| -> f32 {
                let mut t = Tape::new(s);
                let x = t.param(p);
                let y = match act {
                    "sigmoid" => t.sigmoid(x),
                    "relu" => t.relu(x),
                    "tanh" => t.tanh(x),
                    _ => t.ln(x),
                };
                let m = t.mean_all(y);
                t.value(m).item()
            };
            let mut tape = Tape::new(&store);
            let x = tape.param(p);
            let y = match act {
                "sigmoid" => tape.sigmoid(x),
                "relu" => tape.relu(x),
                "tanh" => tape.tanh(x),
                _ => tape.ln(x),
            };
            let loss = tape.mean_all(y);
            let grads = tape.backward(loss);
            let n = numeric_grad(&mut store.clone(), p, run);
            assert_close(grads.get(p).unwrap(), &n, 2e-2, act);
        }
    }

    #[test]
    fn softmax_groups_gradient_matches_numeric() {
        let mut store = ParamStore::new();
        let p = store.register("p", crate::init::uniform(6, 1, 2.0, 11));
        let weights = Tensor::col_vector(&[0.5, -1.0, 2.0, 0.3, 0.1, -0.7]);
        let run = |s: &ParamStore| -> f32 {
            let mut t = Tape::new(s);
            let x = t.param(p);
            let sm = t.softmax_groups(x, 3);
            let w = t.constant(weights.clone());
            let prod = t.mul(sm, w);
            let m = t.sum_all(prod);
            t.value(m).item()
        };
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let sm = tape.softmax_groups(x, 3);
        let w = tape.constant(weights.clone());
        let prod = tape.mul(sm, w);
        let loss = tape.sum_all(prod);
        let grads = tape.backward(loss);
        let n = numeric_grad(&mut store.clone(), p, run);
        assert_close(grads.get(p).unwrap(), &n, 2e-2, "softmax_groups");
    }

    #[test]
    fn group_weighted_sum_gradient_matches_numeric() {
        let mut store = ParamStore::new();
        let w = store.register("w", crate::init::uniform(4, 1, 1.0, 21));
        let v = store.register("v", crate::init::uniform(4, 3, 1.0, 22));
        let run = |s: &ParamStore| -> f32 {
            let mut t = Tape::new(s);
            let wn = t.param(w);
            let vn = t.param(v);
            let o = t.group_weighted_sum(wn, vn, 2);
            let sq = t.mul(o, o);
            let m = t.mean_all(sq);
            t.value(m).item()
        };
        let mut tape = Tape::new(&store);
        let wn = tape.param(w);
        let vn = tape.param(v);
        let o = tape.group_weighted_sum(wn, vn, 2);
        let sq = tape.mul(o, o);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        assert_close(grads.get(w).unwrap(), &numeric_grad(&mut store.clone(), w, run), 2e-2, "dW");
        assert_close(grads.get(v).unwrap(), &numeric_grad(&mut store.clone(), v, run), 2e-2, "dV");
    }

    #[test]
    fn peer_concat_forward_and_backward() {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let pc = tape.peer_concat(x, 3);
        // row 0 = [2,3], row 1 = [1,3], row 2 = [1,2]
        assert_eq!(tape.value(pc).row(0), &[2.0, 3.0]);
        assert_eq!(tape.value(pc).row(1), &[1.0, 3.0]);
        assert_eq!(tape.value(pc).row(2), &[1.0, 2.0]);
        let s = tape.sum_all(pc);
        let grads = tape.backward(s);
        // each row appears in group-1 = 2 peer rows → gradient 2
        assert!(grads.get(p).unwrap().data().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn repeat_rows_and_group_mean_are_inverse_in_gradient() {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let r = tape.repeat_rows(x, 3);
        assert_eq!(tape.value(r).rows(), 6);
        assert_eq!(tape.value(r).row(2), &[1.0, 2.0]);
        assert_eq!(tape.value(r).row(3), &[3.0, 4.0]);
        let m = tape.group_mean(r, 3);
        // mean of identical rows = original
        assert_eq!(tape.value(m).data(), store.value(p).data());
        let s = tape.sum_all(m);
        let grads = tape.backward(s);
        assert!(grads.get(p).unwrap().data().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn row_dot_gradient_matches_numeric() {
        let mut store = ParamStore::new();
        let a = store.register("a", crate::init::uniform(3, 4, 1.0, 31));
        let b = store.register("b", crate::init::uniform(3, 4, 1.0, 32));
        let run = |s: &ParamStore| -> f32 {
            let mut t = Tape::new(s);
            let an = t.param(a);
            let bn = t.param(b);
            let d = t.row_dot(an, bn);
            let sg = t.sigmoid(d);
            let m = t.mean_all(sg);
            t.value(m).item()
        };
        let mut tape = Tape::new(&store);
        let an = tape.param(a);
        let bn = tape.param(b);
        let d = tape.row_dot(an, bn);
        let sg = tape.sigmoid(d);
        let loss = tape.mean_all(sg);
        let grads = tape.backward(loss);
        assert_close(grads.get(a).unwrap(), &numeric_grad(&mut store.clone(), a, run), 2e-2, "dA");
        assert_close(grads.get(b).unwrap(), &numeric_grad(&mut store.clone(), b, run), 2e-2, "dB");
    }

    #[test]
    fn bce_with_logits_value_and_gradient() {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::col_vector(&[0.0, 2.0, -3.0]));
        let targets = Tensor::col_vector(&[1.0, 0.0, 1.0]);
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let l = tape.bce_with_logits(x, targets.clone());
        // loss at x=0, y=1 is ln 2
        assert!((tape.value(l).data()[0] - std::f32::consts::LN_2).abs() < 1e-5);
        let m = tape.mean_all(l);
        let grads = tape.backward(m);
        let gp = grads.get(p).unwrap();
        for i in 0..3 {
            let expect = (sigmoid(store.value(p).data()[i]) - targets.data()[i]) / 3.0;
            assert!((gp.data()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::zeros(3, 2));
        let b = store.register("b", Tensor::from_rows(&[&[1.0, -1.0]]));
        let mut tape = Tape::new(&store);
        let an = tape.param(a);
        let bn = tape.param(b);
        let o = tape.add_row(an, bn);
        assert_eq!(tape.value(o).row(2), &[1.0, -1.0]);
        let s = tape.sum_all(o);
        let grads = tape.backward(s);
        // bias gradient sums over rows
        assert_eq!(grads.get(b).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // x used twice: loss = sum(x) + sum(x) → grad 2 everywhere
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::full(2, 2, 1.0));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let s1 = tape.sum_all(x);
        let s2 = tape.sum_all(x);
        let tot = tape.add(s1, s2);
        let grads = tape.backward(tot);
        assert!(grads.get(p).unwrap().data().iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let c = tape.constant(Tensor::zeros(2, 2));
        tape.backward(c);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::full(2, 2, 1.0));
        let b = store.register("b", Tensor::full(2, 3, 1.0));
        let mut tape = Tape::new(&store);
        let an = tape.param(a);
        let bn = tape.param(b);
        let c = tape.concat_cols(an, bn);
        assert_eq!(tape.value(c).shape(), Shape::new(2, 5));
        let w = tape.constant(Tensor::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[6.0, 7.0, 8.0, 9.0, 10.0],
        ]));
        let prod = tape.mul(c, w);
        let s = tape.sum_all(prod);
        let grads = tape.backward(s);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 2.0, 6.0, 7.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[3.0, 4.0, 5.0, 8.0, 9.0, 10.0]);
    }
}
