//! Deterministic in-workspace thread pool (DESIGN.md §9).
//!
//! The hermetic-build policy (§8) rules out `rayon`, so the workspace
//! supplies its own parallelism: a std-only, work-stealing-lite pool with
//! a fixed logical thread count taken from `KGAG_THREADS` (defaulting to
//! the machine's available parallelism). Every parallel primitive here is
//! **deterministic by construction**: work is split into chunks that each
//! write to a preallocated, disjoint output slot, and the per-element
//! computation order inside a chunk is identical to the sequential code.
//! Results are therefore bit-identical at any thread count — the
//! scheduler decides *when* a chunk runs, never *what* it computes.
//!
//! Three layers:
//!
//! * [`scope`] — run a batch of borrowed closures to completion. A task
//!   that panics *poisons the scope*: the remaining tasks still run (they
//!   borrow stack data that must stay alive), and the first panic is
//!   re-thrown on the caller once the batch has drained. No deadlocks,
//!   no orphaned borrows.
//! * [`par_chunks_mut`] / [`par_map`] — deterministic data-parallel
//!   helpers built on [`scope`]; these are what the tensor kernels,
//!   the neighbor sampler and the trainer use.
//! * [`with_threads`] — a thread-local override of the logical thread
//!   count, so determinism tests and scaling benchmarks can compare
//!   thread counts inside one process.
//!
//! The caller always participates in executing its own batch, so
//! `KGAG_THREADS=1` runs fully inline (zero worker threads, zero
//! synchronisation) and a worker blocked on a nested scope keeps making
//! progress by draining the shared queue instead of sleeping.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on the logical thread count (sanity guard against
/// `KGAG_THREADS=100000`).
pub const MAX_THREADS: usize = 64;

// ----------------------------------------------------------------------
// Thread-count policy
// ----------------------------------------------------------------------

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("KGAG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .min(MAX_THREADS)
    })
}

/// The logical thread count in force on this thread: the innermost
/// [`with_threads`] override, else `KGAG_THREADS`, else the machine's
/// available parallelism.
pub fn num_threads() -> usize {
    THREAD_OVERRIDE.with(|o| o.get()).unwrap_or_else(env_threads)
}

/// Run `f` with the logical thread count forced to `n` on this thread.
///
/// Restores the previous value on exit (also on panic). This is how the
/// determinism suite and the `parallel_scaling` bench compare thread
/// counts without re-launching the process.
///
/// # Panics
/// Panics when `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "with_threads needs at least one thread");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n.min(MAX_THREADS)))));
    f()
}

// ----------------------------------------------------------------------
// The pool
// ----------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    spawned: Mutex<usize>,
}

impl Pool {
    fn new() -> Self {
        Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// Make sure at least `wanted` worker threads exist (capped at
    /// `MAX_THREADS - 1`; the caller thread is the final executor).
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_THREADS - 1);
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < wanted {
            let shared = Arc::clone(&self.shared);
            let index = *spawned;
            std::thread::Builder::new()
                .name(format!("kgag-pool-{index}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        job();
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

// ----------------------------------------------------------------------
// Telemetry
// ----------------------------------------------------------------------

/// Metric handles are interned once per process; every later record is a
/// plain atomic op. Nothing here runs unless `kgag_obs::enabled()`.
struct PoolMetrics {
    scopes: Arc<kgag_obs::Counter>,
    tasks: Arc<kgag_obs::Counter>,
    task_ns: Arc<kgag_obs::Histogram>,
    scope_busy_ns: Arc<kgag_obs::Histogram>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        scopes: kgag_obs::counter("pool.scopes"),
        tasks: kgag_obs::counter("pool.tasks"),
        task_ns: kgag_obs::histogram("pool.task_ns"),
        scope_busy_ns: kgag_obs::histogram("pool.scope_busy_ns"),
    })
}

// ----------------------------------------------------------------------
// Scoped batches
// ----------------------------------------------------------------------

struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Summed task execution time (telemetry only; stays 0 when off).
    busy_ns: AtomicU64,
}

impl Batch {
    fn new(tasks: usize) -> Self {
        Batch {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
            busy_ns: AtomicU64::new(0),
        }
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().unwrap();
            // keep the first panic; later ones are usually knock-on
            slot.get_or_insert(p);
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }
}

/// Collects tasks spawned inside [`scope`].
pub struct Scope<'env> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
}

impl<'env> Scope<'env> {
    /// Queue a task; it runs when the `scope` closure returns.
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'env) {
        self.tasks.push(Box::new(f));
    }
}

/// Run every task spawned on the [`Scope`] to completion, in parallel
/// when the logical thread count allows, and return the closure's value.
///
/// Tasks may borrow from the enclosing stack frame (`'env`): the call
/// does not return until every task has finished. If any task panics the
/// scope is *poisoned* — all other tasks still run to completion, then
/// the first panic is re-thrown here.
pub fn scope<'env, R>(f: impl FnOnce(&mut Scope<'env>) -> R) -> R {
    let mut s = Scope { tasks: Vec::new() };
    let out = f(&mut s);
    run_tasks(s.tasks);
    out
}

fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if tasks.is_empty() {
        return;
    }
    let telemetry = kgag_obs::enabled();
    if telemetry {
        let m = metrics();
        m.scopes.add(1);
        m.tasks.add(tasks.len() as u64);
    }
    if num_threads() == 1 || tasks.len() == 1 {
        if telemetry {
            let m = metrics();
            let mut busy = 0u64;
            for task in tasks {
                let start = Instant::now();
                task();
                let ns = start.elapsed().as_nanos() as u64;
                m.task_ns.record(ns);
                busy += ns;
            }
            m.scope_busy_ns.record(busy);
        } else {
            for task in tasks {
                task();
            }
        }
        return;
    }
    let batch = Arc::new(Batch::new(tasks.len()));
    let pool = pool();
    pool.ensure_workers(num_threads() - 1);
    {
        let mut queue = pool.shared.queue.lock().unwrap();
        for task in tasks {
            // SAFETY: `run_tasks` blocks below until `batch.remaining`
            // reaches zero, i.e. until every task has finished running,
            // so the non-'static borrows captured by the tasks are live
            // for the whole execution.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let b = Arc::clone(&batch);
            queue.push_back(Box::new(move || {
                let start = telemetry.then(Instant::now);
                let outcome = catch_unwind(AssertUnwindSafe(task));
                if let Some(start) = start {
                    let ns = start.elapsed().as_nanos() as u64;
                    metrics().task_ns.record(ns);
                    b.busy_ns.fetch_add(ns, Ordering::Relaxed);
                }
                b.complete(outcome.err());
            }));
        }
    }
    pool.shared.available.notify_all();
    // The caller participates: drain the shared queue (its own tasks and
    // any other in-flight batch's — work-stealing-lite) until empty,
    // then block until the stragglers running on workers finish.
    loop {
        let job = pool.shared.queue.lock().unwrap().pop_front();
        match job {
            Some(job) => job(),
            None => break,
        }
    }
    batch.wait();
    if telemetry {
        metrics().scope_busy_ns.record(batch.busy_ns.load(Ordering::Relaxed));
    }
    let panic = batch.panic.lock().unwrap().take();
    if let Some(p) = panic {
        resume_unwind(p);
    }
}

// ----------------------------------------------------------------------
// Deterministic data-parallel helpers
// ----------------------------------------------------------------------

/// Split `data` into consecutive chunks of `chunk_len` elements (the
/// last may be shorter) and run `f(chunk_index, chunk)` for each, in
/// parallel. Chunk `i` always covers `data[i*chunk_len ..]` — outputs
/// land in the same slots at any thread count.
///
/// # Panics
/// Panics when `chunk_len == 0` and `data` is non-empty.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "par_chunks_mut with chunk_len == 0");
    if num_threads() == 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    scope(|s| {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move || f(i, chunk));
        }
    });
}

/// Map `f(index, item)` over `items`, returning results in input order.
/// The split into per-thread bands never affects the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = num_threads();
    if threads == 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let band = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    scope(|s| {
        for (bi, (out_band, in_band)) in out.chunks_mut(band).zip(items.chunks(band)).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = bi * band;
                for (j, (slot, item)) in out_band.iter_mut().zip(in_band).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter().map(|o| o.expect("par_map: every slot filled")).collect()
}

/// Chunk length that splits `total` items into at most `num_threads()`
/// contiguous bands of `unit`-aligned elements. `unit` is the indivisible
/// element group (e.g. a tensor row); the returned length is a multiple
/// of `unit`.
pub fn band_len(total_units: usize, unit: usize) -> usize {
    total_units.div_ceil(num_threads()).max(1) * unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks() {
        let counter = AtomicUsize::new(0);
        with_threads(4, || {
            scope(|s| {
                for _ in 0..32 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn par_chunks_mut_covers_every_slot_once() {
        let mut data = vec![0u32; 1003];
        with_threads(4, || {
            par_chunks_mut(&mut data, 64, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x += (ci * 64 + j) as u32;
                }
            });
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u32, "slot {i} written {x}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..517).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
        for t in [1usize, 2, 3, 8] {
            let par = with_threads(t, || par_map(&items, |i, &x| x * 3 + i as u64));
            assert_eq!(par, seq, "thread count {t}");
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outer = num_threads();
        with_threads(3, || assert_eq!(num_threads(), 3));
        assert_eq!(num_threads(), outer);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_threads(2, || panic!("boom"));
        }));
        assert!(caught.is_err());
        assert_eq!(num_threads(), outer, "override must unwind with the panic");
    }

    #[test]
    fn nested_scopes_make_progress() {
        let total = AtomicUsize::new(0);
        with_threads(4, || {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        scope(|inner| {
                            for _ in 0..8 {
                                inner.spawn(|| {
                                    total.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    });
                }
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_task_poisons_scope_without_deadlock() {
        let survivors = Arc::new(AtomicUsize::new(0));
        let survivors_c = Arc::clone(&survivors);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                scope(|s| {
                    s.spawn(|| panic!("task exploded"));
                    for _ in 0..16 {
                        let sv = Arc::clone(&survivors_c);
                        s.spawn(move || {
                            sv.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        }));
        let err = outcome.expect_err("scope must re-throw the task panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task exploded"), "unexpected payload: {msg}");
        // poisoned, not aborted: every sibling task still ran
        assert_eq!(survivors.load(Ordering::SeqCst), 16);
    }
}
