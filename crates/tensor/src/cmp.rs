//! NaN-safe total orders on `f32` scores, shared across the workspace.
//!
//! Model scores can turn NaN — diverged parameters, a saturated
//! exponent — and `partial_cmp(..).unwrap_or(Equal)` comparators make
//! the resulting order (and everything derived from it: rankings,
//! "best item" picks, report sorting) depend on where the NaN happens
//! to sit in the input. [`score_cmp`] is the single total order every
//! score comparison in the workspace uses instead: any NaN ranks below
//! every real number, NaNs tie with each other, and real numbers follow
//! IEEE `total_cmp`. (`total_cmp` alone would rank a positive-sign NaN
//! *above* +∞ — exactly the corruption this order rules out.)

use std::cmp::Ordering;

/// Total order on scores: any NaN (either sign) is below every real
/// number and all NaNs compare equal; non-NaN scores follow IEEE
/// `total_cmp`.
#[inline]
pub fn score_cmp(x: f32, y: f32) -> Ordering {
    match (x.is_nan(), y.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => x.total_cmp(&y),
    }
}

/// [`score_cmp`] reversed — the comparator for descending sorts
/// ("best first"), with NaN scores sinking to the end of the list.
#[inline]
pub fn score_cmp_desc(x: f32, y: f32) -> Ordering {
    score_cmp(y, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEG_NAN: f32 = f32::from_bits(f32::NAN.to_bits() | 0x8000_0000);

    #[test]
    fn nan_loses_to_every_real() {
        for real in [f32::NEG_INFINITY, -1.0, 0.0, 1.0, f32::INFINITY] {
            assert_eq!(score_cmp(f32::NAN, real), Ordering::Less);
            assert_eq!(score_cmp(NEG_NAN, real), Ordering::Less);
            assert_eq!(score_cmp(real, f32::NAN), Ordering::Greater);
        }
    }

    #[test]
    fn nans_tie_regardless_of_sign() {
        assert_eq!(score_cmp(f32::NAN, NEG_NAN), Ordering::Equal);
        assert_eq!(score_cmp(NEG_NAN, f32::NAN), Ordering::Equal);
    }

    #[test]
    fn reals_follow_total_cmp() {
        assert_eq!(score_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(score_cmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(score_cmp(0.5, 0.5), Ordering::Equal);
        assert_eq!(score_cmp(f32::NEG_INFINITY, f32::INFINITY), Ordering::Less);
    }

    #[test]
    fn descending_sort_sinks_nans() {
        let mut v = [0.3, f32::NAN, 0.9, NEG_NAN, 0.1];
        v.sort_by(|a, b| score_cmp_desc(*a, *b));
        assert_eq!(&v[..3], &[0.9, 0.3, 0.1]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn is_a_total_order() {
        // antisymmetry + transitivity spot-check over a mixed sample,
        // which is what sort_by requires to avoid UB-adjacent panics
        let xs = [f32::NAN, NEG_NAN, f32::NEG_INFINITY, -1.0, -0.0, 0.0, 1.0, f32::INFINITY];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(score_cmp(a, b), score_cmp(b, a).reverse());
                for &c in &xs {
                    if score_cmp(a, b) != Ordering::Greater && score_cmp(b, c) != Ordering::Greater
                    {
                        assert_ne!(score_cmp(a, c), Ordering::Greater, "{a} {b} {c}");
                    }
                }
            }
        }
    }
}
