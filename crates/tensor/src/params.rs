//! Named parameter storage and gradient maps.
//!
//! A [`ParamStore`] owns every trainable tensor of a model. Tapes read
//! values through it and [`Gradients`] accumulates dense per-parameter
//! gradients during the backward pass; optimizers then consume both.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Cheap handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// The raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named collection of trainable tensors.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    by_name: HashMap<String, ParamId>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with a unique name.
    ///
    /// # Panics
    /// Panics when the name is already taken.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        assert!(!self.by_name.contains_key(name), "duplicate parameter name {name:?}");
        let id = ParamId(self.values.len() as u32);
        self.names.push(name.to_owned());
        self.values.push(value);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up a parameter by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// The parameter's name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.index()]
    }

    /// Mutable value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.index()]
    }

    /// Shape of a parameter.
    pub fn shape(&self, id: ParamId) -> Shape {
        self.values[id.index()].shape()
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.values.iter().map(|t| t.shape().len()).sum()
    }

    /// Iterate over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values.iter().enumerate().map(|(i, v)| (ParamId(i as u32), self.names[i].as_str(), v))
    }

    /// Sum of squared weights over all parameters: ‖Θ‖² of Eq. 20.
    pub fn sq_norm(&self) -> f32 {
        self.values.iter().map(Tensor::sq_norm).sum()
    }

    /// True if any parameter contains NaN/inf (training-health check).
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().any(Tensor::has_non_finite)
    }
}

/// Dense per-parameter gradients produced by [`crate::Tape::backward`].
///
/// Only parameters actually touched by the tape appear; optimizers skip
/// the rest, which makes alternating user-batch/group-batch training cheap.
#[derive(Clone, Debug, Default)]
pub struct Gradients {
    grads: HashMap<ParamId, Tensor>,
}

impl Gradients {
    /// An empty gradient map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gradient for `id`, if the parameter participated in the tape.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.grads.get(&id)
    }

    /// Accumulate `delta` into the gradient of `id` (creating zeros first
    /// if absent).
    pub fn accumulate(&mut self, id: ParamId, shape: Shape, f: impl FnOnce(&mut Tensor)) {
        let g = self.grads.entry(id).or_insert_with(|| Tensor::zeros(shape.rows, shape.cols));
        f(g);
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when no gradients were produced.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Iterate over `(id, grad)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.grads.iter().map(|(&id, g)| (id, g))
    }

    /// Global gradient L2 norm (diagnostics / clipping).
    pub fn global_norm(&self) -> f32 {
        self.grads.values().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Scale every gradient so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            for g in self.grads.values_mut() {
                g.map_inplace(|x| x * k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.register("emb", Tensor::zeros(4, 2));
        let b = s.register("w", Tensor::identity(2));
        assert_eq!(s.id("emb"), Some(a));
        assert_eq!(s.id("w"), Some(b));
        assert_eq!(s.id("nope"), None);
        assert_eq!(s.name(a), "emb");
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_weights(), 8 + 4);
        assert_eq!(s.shape(a), Shape::new(4, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.register("x", Tensor::zeros(1, 1));
        s.register("x", Tensor::zeros(1, 1));
    }

    #[test]
    fn sq_norm_sums_params() {
        let mut s = ParamStore::new();
        s.register("a", Tensor::full(1, 2, 2.0)); // 8
        s.register("b", Tensor::full(1, 1, 3.0)); // 9
        assert_eq!(s.sq_norm(), 17.0);
    }

    #[test]
    fn gradients_accumulate() {
        let mut g = Gradients::new();
        let id = ParamId(0);
        let shape = Shape::new(2, 2);
        g.accumulate(id, shape, |t| t.data_mut()[0] += 1.0);
        g.accumulate(id, shape, |t| t.data_mut()[0] += 2.0);
        assert_eq!(g.get(id).unwrap().data()[0], 3.0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn clip_global_norm() {
        let mut g = Gradients::new();
        g.accumulate(ParamId(0), Shape::new(1, 2), |t| {
            t.data_mut().copy_from_slice(&[3.0, 4.0]);
        });
        assert_eq!(g.global_norm(), 5.0);
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // no-op below the threshold
        g.clip_global_norm(10.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_check() {
        let mut s = ParamStore::new();
        let id = s.register("a", Tensor::zeros(1, 1));
        assert!(!s.has_non_finite());
        s.value_mut(id).data_mut()[0] = f32::INFINITY;
        assert!(s.has_non_finite());
    }
}
