//! First-order optimizers over a [`ParamStore`].
//!
//! All optimizers implement [`Optimizer`] and support decoupled L2 weight
//! decay: decay is added to the gradient (`g ← g + λθ`) before the update,
//! which is exactly the gradient of the λ‖Θ‖² regulariser in the paper's
//! Eq. 20. Decay (and updates generally) apply only to parameters that
//! received a gradient, so alternating group-batch/user-batch training
//! never decays untouched towers.

use crate::params::{Gradients, ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// A first-order optimizer.
pub trait Optimizer {
    /// Apply one update step given gradients for a subset of parameters.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    /// L2 weight-decay coefficient λ.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no decay.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, weight_decay: 0.0 }
    }

    /// SGD with L2 weight decay.
    pub fn with_decay(lr: f32, weight_decay: f32) -> Self {
        Sgd { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let theta = store.value_mut(id);
            let wd = self.weight_decay;
            for (t, &gi) in theta.data_mut().iter_mut().zip(g.data()) {
                *t -= self.lr * (gi + wd * *t);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adaptive moment estimation (Kingma & Ba) — the optimizer used by the
/// paper ("minimize the loss in Eq. 20 with adaptive moment estimation").
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight-decay coefficient λ.
    pub weight_decay: f32,
    state: HashMap<ParamId, AdamState>,
}

#[derive(Clone, Debug)]
struct AdamState {
    m: Tensor,
    v: Tensor,
    t: u32,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, state: HashMap::new() }
    }

    /// Adam with L2 weight decay.
    pub fn with_decay(lr: f32, weight_decay: f32) -> Self {
        Adam { weight_decay, ..Adam::new(lr) }
    }

    /// Per-parameter step counter (0 before the first update).
    pub fn steps(&self, id: ParamId) -> u32 {
        self.state.get(&id).map_or(0, |s| s.t)
    }

    /// Snapshot the per-parameter moment state as `(id, t, m, v)`
    /// entries, sorted by parameter id so serialisation is
    /// deterministic regardless of hash-map iteration order.
    pub fn export_state(&self) -> Vec<(ParamId, u32, Tensor, Tensor)> {
        let mut out: Vec<_> =
            self.state.iter().map(|(&id, s)| (id, s.t, s.m.clone(), s.v.clone())).collect();
        out.sort_by_key(|&(id, ..)| id);
        out
    }

    /// Replace the moment state wholesale (checkpoint restore). Entries
    /// for the same id overwrite each other, last wins; parameters
    /// absent from `state` start fresh at t = 0 on their next step.
    pub fn set_state(&mut self, state: Vec<(ParamId, u32, Tensor, Tensor)>) {
        self.state.clear();
        for (id, t, m, v) in state {
            self.state.insert(id, AdamState { m, v, t });
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let shape = store.shape(id);
            let st = self.state.entry(id).or_insert_with(|| AdamState {
                m: Tensor::zeros(shape.rows, shape.cols),
                v: Tensor::zeros(shape.rows, shape.cols),
                t: 0,
            });
            st.t += 1;
            let bc1 = 1.0 - self.beta1.powi(st.t as i32);
            let bc2 = 1.0 - self.beta2.powi(st.t as i32);
            let theta = store.value_mut(id);
            for i in 0..shape.len() {
                let gi = g.data()[i] + self.weight_decay * theta.data()[i];
                let m = &mut st.m.data_mut()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * gi;
                let v = &mut st.v.data_mut()[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * gi * gi;
                let m_hat = *m / bc1;
                let v_hat = *v / bc2;
                theta.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad: per-weight learning rates that decay with accumulated squared
/// gradients. Included for the optimizer ablation benches.
#[derive(Clone, Debug)]
pub struct AdaGrad {
    lr: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight-decay coefficient λ.
    pub weight_decay: f32,
    accum: HashMap<ParamId, Tensor>,
}

impl AdaGrad {
    /// AdaGrad with the given learning rate.
    pub fn new(lr: f32) -> Self {
        AdaGrad { lr, eps: 1e-10, weight_decay: 0.0, accum: HashMap::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let shape = store.shape(id);
            let acc = self.accum.entry(id).or_insert_with(|| Tensor::zeros(shape.rows, shape.cols));
            let theta = store.value_mut(id);
            for i in 0..shape.len() {
                let gi = g.data()[i] + self.weight_decay * theta.data()[i];
                acc.data_mut()[i] += gi * gi;
                theta.data_mut()[i] -= self.lr * gi / (acc.data()[i].sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimise (w - 3)² with each optimizer and check convergence.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        for _ in 0..800 {
            let mut tape = Tape::new(&store);
            let wn = tape.param(w);
            let target = tape.constant(Tensor::scalar(3.0));
            let diff = tape.sub(wn, target);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges() {
        let got = converges(&mut Sgd::new(0.1));
        assert!((got - 3.0).abs() < 1e-3, "sgd got {got}");
    }

    #[test]
    fn adam_converges() {
        let got = converges(&mut Adam::new(0.05));
        assert!((got - 3.0).abs() < 1e-2, "adam got {got}");
    }

    #[test]
    fn adagrad_converges() {
        let got = converges(&mut AdaGrad::new(0.5));
        assert!((got - 3.0).abs() < 1e-2, "adagrad got {got}");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // zero gradient + decay → exponential shrink toward 0
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        let mut grads = Gradients::new();
        grads.accumulate(w, store.shape(w), |_| {});
        let mut opt = Sgd::with_decay(0.1, 0.5);
        for _ in 0..10 {
            opt.step(&mut store, &grads);
        }
        let got = store.value(w).item();
        assert!((got - 0.95f32.powi(10)).abs() < 1e-5, "got {got}");
    }

    #[test]
    fn untouched_params_are_not_updated() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        let u = store.register("untouched", Tensor::scalar(5.0));
        let mut grads = Gradients::new();
        grads.accumulate(w, store.shape(w), |t| t.data_mut()[0] = 1.0);
        let mut opt = Adam::with_decay(0.1, 0.1);
        opt.step(&mut store, &grads);
        assert_eq!(store.value(u).item(), 5.0);
        assert!(store.value(w).item() < 1.0);
        assert_eq!(opt.steps(w), 1);
        assert_eq!(opt.steps(u), 0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn adam_beats_sgd_on_badly_scaled_problem() {
        // loss = 100·(a−1)² + 0.01·(b−1)²; Adam's per-weight scaling should
        // reach b≈1 far faster than SGD at a stable lr.
        let run = |use_adam: bool| -> f32 {
            let mut store = ParamStore::new();
            let p = store.register("p", Tensor::from_rows(&[&[0.0, 0.0]]));
            let scales = Tensor::from_rows(&[&[100.0, 0.01]]);
            let mut adam = Adam::new(0.05);
            let mut sgd = Sgd::new(0.005);
            for _ in 0..400 {
                let mut tape = Tape::new(&store);
                let pn = tape.param(p);
                let ones = tape.constant(Tensor::from_rows(&[&[1.0, 1.0]]));
                let diff = tape.sub(pn, ones);
                let sq = tape.mul(diff, diff);
                let sc = tape.constant(scales.clone());
                let weighted = tape.mul(sq, sc);
                let loss = tape.sum_all(weighted);
                let grads = tape.backward(loss);
                if use_adam {
                    adam.step(&mut store, &grads);
                } else {
                    sgd.step(&mut store, &grads);
                }
            }
            (store.value(p).data()[1] - 1.0).abs()
        };
        assert!(run(true) < run(false));
    }
}
