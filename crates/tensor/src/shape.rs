//! Two-dimensional shapes.
//!
//! Everything in this crate is a dense row-major matrix; column vectors are
//! `[n, 1]` and scalars are `[1, 1]`. A fixed rank keeps the autodiff tape
//! simple and is all the KGAG computation graph needs.

use std::fmt;

/// The shape of a [`crate::Tensor`]: `rows × cols`, row-major.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape {
    /// Create a shape.
    #[inline]
    pub const fn new(rows: usize, cols: usize) -> Self {
        Shape { rows, cols }
    }

    /// Total number of elements.
    #[inline]
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the shape holds no elements.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for a `[1, 1]` shape.
    #[inline]
    pub const fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// True for a column vector (`cols == 1`).
    #[inline]
    pub const fn is_col_vector(&self) -> bool {
        self.cols == 1
    }

    /// Flat index of element `(r, c)`.
    #[inline]
    pub const fn index(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }

    /// Shape of `self × rhs` matrix product, or `None` when the inner
    /// dimensions disagree.
    #[inline]
    pub fn matmul(&self, rhs: &Shape) -> Option<Shape> {
        (self.cols == rhs.rows).then(|| Shape::new(self.rows, rhs.cols))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.rows, self.cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((rows, cols): (usize, usize)) -> Self {
        Shape::new(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_index() {
        let s = Shape::new(3, 4);
        assert_eq!(s.len(), 12);
        assert_eq!(s.index(0, 0), 0);
        assert_eq!(s.index(1, 0), 4);
        assert_eq!(s.index(2, 3), 11);
        assert!(!s.is_empty());
        assert!(!s.is_scalar());
    }

    #[test]
    fn scalar_and_vector_predicates() {
        assert!(Shape::new(1, 1).is_scalar());
        assert!(Shape::new(5, 1).is_col_vector());
        assert!(!Shape::new(1, 5).is_col_vector());
        assert!(Shape::new(0, 7).is_empty());
    }

    #[test]
    fn matmul_shapes() {
        let a = Shape::new(2, 3);
        let b = Shape::new(3, 5);
        assert_eq!(a.matmul(&b), Some(Shape::new(2, 5)));
        assert_eq!(b.matmul(&a), None);
    }

    #[test]
    fn from_tuple_and_display() {
        let s: Shape = (2, 7).into();
        assert_eq!(s, Shape::new(2, 7));
        assert_eq!(format!("{s}"), "2x7");
        assert_eq!(format!("{s:?}"), "[2, 7]");
    }
}
