//! Property-based tests of the static score-aggregation strategies: the
//! aggregate stays in the members' hull, is permutation-invariant and
//! monotone, and the group-scorer adaptor matches per-item manual
//! aggregation.

use kgag_baselines::aggregators::{AggregatedGroupScorer, IndividualScorer, ScoreAggregator};
use kgag_eval::GroupScorer;
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{f32_in, u64_in, usize_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// Deterministic individual scorer: score(u, v) is a pure function of
/// (seed, u, v), so every property run is reproducible.
struct HashScorer {
    seed: u64,
}

impl IndividualScorer for HashScorer {
    fn score_user(&self, user: u32, items: &[u32]) -> Vec<f32> {
        items
            .iter()
            .map(|&v| {
                let s = derive_seed(self.seed, &format!("u{user}-v{v}"));
                SplitMix64::new(s).next_f32()
            })
            .collect()
    }
}

/// The aggregate of member scores always lies inside the coordinate
/// hull: LM is the min, MP is the max, AVG between the two.
#[test]
fn aggregate_stays_in_member_hull() {
    let gen = vec_of(f32_in(-5.0..5.0), 1..12);
    Runner::new("aggregate_stays_in_member_hull").cases(64).run(&gen, |scores| {
        let lo = scores.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(ScoreAggregator::LeastMisery.aggregate(scores), lo);
        prop_assert_eq!(ScoreAggregator::MaxPleasure.aggregate(scores), hi);
        let avg = ScoreAggregator::Average.aggregate(scores);
        prop_assert!(avg >= lo - 1e-5 && avg <= hi + 1e-5, "AVG {avg} outside [{lo}, {hi}]");
        Ok(())
    });
}

/// Aggregation is invariant under any permutation of the members.
#[test]
fn aggregate_is_permutation_invariant() {
    let gen = (vec_of(f32_in(-5.0..5.0), 1..10), u64_in(0..1000));
    Runner::new("aggregate_is_permutation_invariant").cases(64).run(&gen, |(scores, seed)| {
        let mut shuffled = scores.clone();
        SplitMix64::new(*seed).shuffle(&mut shuffled);
        for agg in ScoreAggregator::all() {
            let a = agg.aggregate(scores);
            let b = agg.aggregate(&shuffled);
            // AVG reorders a float sum; allow rounding slack
            prop_assert!(
                (a - b).abs() < 1e-5,
                "{} not permutation-invariant: {a} vs {b}",
                agg.label()
            );
        }
        Ok(())
    });
}

/// Raising every member's score never lowers any aggregate.
#[test]
fn aggregate_is_monotone_in_member_scores() {
    let gen = (vec_of(f32_in(-5.0..5.0), 1..10), vec_of(f32_in(0.0..2.0), 1..10));
    Runner::new("aggregate_is_monotone_in_member_scores").cases(64).run(
        &gen,
        |(scores, deltas)| {
            let n = scores.len().min(deltas.len());
            let base = &scores[..n];
            let raised: Vec<f32> = base.iter().zip(&deltas[..n]).map(|(s, d)| s + d).collect();
            for agg in ScoreAggregator::all() {
                let a = agg.aggregate(base);
                let b = agg.aggregate(&raised);
                prop_assert!(
                    b >= a - 1e-5,
                    "{} decreased after raising scores: {a} -> {b}",
                    agg.label()
                );
            }
            Ok(())
        },
    );
}

/// The group-scorer adaptor equals manual per-item aggregation of the
/// individual scorer's outputs, for every strategy.
#[test]
fn adaptor_matches_manual_aggregation() {
    let gen = (u64_in(0..1000), usize_in(1..6), usize_in(1..8));
    Runner::new("adaptor_matches_manual_aggregation").cases(64).run(
        &gen,
        |&(seed, group_size, num_items)| {
            let model = HashScorer { seed };
            let members: Vec<u32> = (0..group_size as u32).collect();
            let groups = vec![members.clone()];
            let items: Vec<u32> = (0..num_items as u32).collect();
            for agg in ScoreAggregator::all() {
                let scorer = AggregatedGroupScorer::new(&model, &groups, agg);
                let got = scorer.score(0, &items);
                prop_assert_eq!(got.len(), items.len());
                for (i, &v) in items.iter().enumerate() {
                    let col: Vec<f32> =
                        members.iter().map(|&u| model.score_user(u, &[v])[0]).collect();
                    let want = agg.aggregate(&col);
                    prop_assert!(
                        (got[i] - want).abs() < 1e-6,
                        "{} item {v}: {} vs manual {want}",
                        agg.label(),
                        got[i]
                    );
                }
            }
            Ok(())
        },
    );
}

/// AVG scales linearly: aggregating `c * scores` gives `c * AVG` —
/// and LM/MP commute with positive scaling too.
#[test]
fn aggregate_commutes_with_positive_scaling() {
    let gen = (vec_of(f32_in(-5.0..5.0), 1..10), f32_in(0.1..4.0));
    Runner::new("aggregate_commutes_with_positive_scaling").cases(64).run(&gen, |(scores, c)| {
        let c = *c;
        let scaled: Vec<f32> = scores.iter().map(|s| s * c).collect();
        for agg in ScoreAggregator::all() {
            let a = agg.aggregate(&scaled);
            let b = c * agg.aggregate(scores);
            prop_assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{}: {a} vs {b}", agg.label());
        }
        Ok(())
    });
}
