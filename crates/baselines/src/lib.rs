//! # kgag-baselines
//!
//! Every comparison method of the paper's Table II, trained and
//! evaluated under the same protocol as KGAG:
//!
//! * [`mf::MatrixFactorization`] — the CF individual recommender [35],
//!   combined with the static score aggregators (CF+AVG / CF+LM /
//!   CF+MP);
//! * [`kgcn::Kgcn`] — the knowledge-graph convolutional individual
//!   recommender [25] (item-side propagation over the item KG), also
//!   combined with the static aggregators;
//! * [`mosan::Mosan`] — the sub-attention-network group recommender
//!   [16], with user vectors initialised from TransE over the
//!   collaborative KG (the paper's fair-comparison substitution for its
//!   user-context vectors);
//! * [`popularity::Popularity`] — a non-learned sanity floor (not in the
//!   paper; useful to calibrate the synthetic datasets).
//!
//! Following §IV-D, every *trained* baseline optimises the same combined
//! objective as KGAG (Eq. 20): the margin-based group ranking loss plus
//! the user log loss, weighted by β.

pub mod aggregators;
pub mod kgcn;
pub mod mf;
pub mod mosan;
pub mod popularity;
pub mod pseudo_user;

pub use aggregators::{AggregatedGroupScorer, IndividualScorer, ScoreAggregator};
pub use kgcn::{Kgcn, KgcnConfig};
pub use mf::{MatrixFactorization, MfConfig};
pub use mosan::{Mosan, MosanConfig};
pub use popularity::Popularity;
pub use pseudo_user::PseudoUserGroups;

/// Hyper-parameters shared by the trained baselines.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay λ.
    pub lambda: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Group-instance batch size.
    pub batch_size: usize,
    /// User instances per step.
    pub user_batch_size: usize,
    /// Group-loss weight β (Eq. 20).
    pub beta: f32,
    /// Margin M of the group ranking loss.
    pub margin: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            dim: 16,
            learning_rate: 1e-2,
            lambda: 1e-5,
            epochs: 20,
            batch_size: 128,
            user_batch_size: 256,
            beta: 0.7,
            margin: 0.4,
            seed: 0xba5e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = BaselineConfig::default();
        assert!(c.dim > 0 && c.epochs > 0 && c.batch_size > 0);
        assert!((0.0..=1.0).contains(&c.beta));
    }
}
