//! Persistent-group baseline: treat each group as a pseudo-user.
//!
//! §I of the paper: "For persistent group recommendation, we can treat
//! each group as a special user, and use the methods of individual
//! recommendation directly. However, as for occasional group … the
//! record of group–item interaction is too sparse to learn the
//! preference for it straightforwardly." This baseline makes that claim
//! testable: a direct group embedding trained only on group–item
//! interactions, with no member information at all. On the paper's
//! occasional-group datasets it should trail every member-aware method —
//! especially on Yelp's one-interaction groups, where it can barely
//! learn anything.

use crate::BaselineConfig;
use kgag::loss::{margin_group_loss, user_log_loss};
use kgag_data::split::{DatasetSplit, NegativeSampler};
use kgag_data::GroupDataset;
use kgag_eval::GroupScorer;
use kgag_tensor::optim::{Adam, Optimizer};
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_tensor::{init, ParamId, ParamStore, Tape, Tensor};

/// A matrix-factorization model whose "users" are groups.
pub struct PseudoUserGroups {
    config: BaselineConfig,
    store: ParamStore,
    group_emb: ParamId,
    item_emb: ParamId,
    num_items: u32,
}

impl PseudoUserGroups {
    /// Build an untrained model over `ds`.
    pub fn new(ds: &GroupDataset, config: BaselineConfig) -> Self {
        let mut store = ParamStore::new();
        let group_emb = store.register(
            "group_emb",
            init::xavier_uniform(
                ds.num_groups() as usize,
                config.dim,
                derive_seed(config.seed, "pseudo-g"),
            ),
        );
        let item_emb = store.register(
            "item_emb",
            init::xavier_uniform(
                ds.num_items as usize,
                config.dim,
                derive_seed(config.seed, "pseudo-v"),
            ),
        );
        PseudoUserGroups { config, store, group_emb, item_emb, num_items: ds.num_items }
    }

    /// Train on group–item interactions only (a pointwise log loss plus
    /// the margin ranking loss — the same combined objective, but with
    /// no user tower to fall back on).
    pub fn fit(&mut self, split: &DatasetSplit) -> Vec<f32> {
        let cfg = self.config.clone();
        let mut adam = Adam::with_decay(cfg.learning_rate, cfg.lambda);
        let mut rng = SplitMix64::new(derive_seed(cfg.seed, "pseudo-fit"));
        let known: Vec<(u32, u32)> =
            split.group.train.iter().chain(&split.group.val).copied().collect();
        let neg = NegativeSampler::new(known, self.num_items);
        let mut pairs = split.group.train.clone();
        assert!(!pairs.is_empty(), "no group training data");
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut pairs);
            let (mut sum, mut n) = (0.0f64, 0usize);
            for chunk in pairs.chunks(cfg.batch_size) {
                let groups: Vec<u32> = chunk.iter().map(|&(g, _)| g).collect();
                let pos: Vec<u32> = chunk.iter().map(|&(_, v)| v).collect();
                let negs: Vec<u32> = chunk.iter().map(|&(g, _)| neg.sample(g, &mut rng)).collect();
                let (grads, loss) = {
                    let mut tape = Tape::new(&self.store);
                    let g_rep = tape.gather(self.group_emb, &groups);
                    let p = tape.gather(self.item_emb, &pos);
                    let nn = tape.gather(self.item_emb, &negs);
                    let s_pos = tape.row_dot(g_rep, p);
                    let s_neg = tape.row_dot(g_rep, nn);
                    let margin = margin_group_loss(&mut tape, s_pos, s_neg, cfg.margin);
                    // pointwise anchor so scores stay calibrated
                    let b = chunk.len();
                    let point = {
                        let t_pos =
                            user_log_loss(&mut tape, s_pos, Tensor::col_vector(&vec![1.0; b]));
                        let t_neg =
                            user_log_loss(&mut tape, s_neg, Tensor::col_vector(&vec![0.0; b]));
                        tape.add(t_pos, t_neg)
                    };
                    let point_w = tape.scale(point, 0.25);
                    let total = tape.add(margin, point_w);
                    (tape.backward(total), tape.value(total).item())
                };
                adam.step(&mut self.store, &grads);
                sum += loss as f64;
                n += 1;
            }
            losses.push((sum / n.max(1) as f64) as f32);
        }
        losses
    }
}

impl GroupScorer for PseudoUserGroups {
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32> {
        let g = self.store.value(self.group_emb);
        let v = self.store.value(self.item_emb);
        items
            .iter()
            .map(|&i| kgag_tensor::tensor::sigmoid(g.row_dot(group as usize, v, i as usize)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
    use kgag_data::split::split_dataset;

    #[test]
    fn trains_and_loss_decreases() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 4);
        let mut m = PseudoUserGroups::new(
            &ds,
            BaselineConfig { epochs: 15, learning_rate: 0.05, ..Default::default() },
        );
        let losses = m.fit(&split);
        assert!(losses.last().unwrap() < losses.first().unwrap(), "{losses:?}");
        let scores = m.score(0, &[0, 1, 2]);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn memorises_training_positives() {
        // persistent groups with enough data are learnable by a direct
        // embedding — that is exactly the paper's point
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 4);
        let mut m = PseudoUserGroups::new(
            &ds,
            BaselineConfig { epochs: 50, learning_rate: 0.05, ..Default::default() },
        );
        m.fit(&split);
        // training positives should outscore random items on average
        let mut pos_sum = 0.0;
        let mut pos_n = 0;
        let mut rnd_sum = 0.0;
        let mut rnd_n = 0;
        for g in 0..ds.num_groups().min(30) {
            let train = split.group.train_items(g);
            if train.is_empty() {
                continue;
            }
            for s in m.score(g, train) {
                pos_sum += s as f64;
                pos_n += 1;
            }
            let probe: Vec<u32> = (0..ds.num_items).step_by(11).collect();
            for s in m.score(g, &probe) {
                rnd_sum += s as f64;
                rnd_n += 1;
            }
        }
        let (p, r) = (pos_sum / pos_n as f64, rnd_sum / rnd_n as f64);
        assert!(p > r + 0.05, "train positives {p:.3} vs random {r:.3}");
    }
}
