//! KGCN — knowledge graph convolutional networks for recommendation
//! (Wang et al., WWW 2019 [25]), the paper's state-of-the-art
//! KG-based *individual* recommender.
//!
//! Differences from KGAG, faithful to the original:
//!
//! * propagation runs over the **item knowledge graph only** — users are
//!   a plain embedding table, not KG nodes (no collaborative KG);
//! * only the **item side** is propagated; the neighbor weight is
//!   `softmax(u · r)` with the user embedding as the query (KGCN's
//!   user-relation score);
//! * there is no preference-aggregation attention: group scores come
//!   from the static aggregators, as in the paper's KGCN+LM/MP/AVG rows.
//!
//! Per §IV-D it still trains on the combined Eq. 20 objective (group
//! prediction = mean-member query and inner product, the differentiable
//! AVG surrogate).

use crate::aggregators::IndividualScorer;
use crate::BaselineConfig;
use kgag::config::Aggregator;
use kgag::loss::{margin_group_loss, user_log_loss};
use kgag::model::PropagationParams;
use kgag::propagation::propagate;
use kgag_data::split::{DatasetSplit, NegativeSampler};
use kgag_data::GroupDataset;
use kgag_kg::{KgGraph, NeighborSampler};
use kgag_tensor::optim::{Adam, Optimizer};
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_tensor::{init, NodeId, ParamId, ParamStore, Tape, Tensor};

/// KGCN hyper-parameters: the shared baseline set plus the propagation
/// depth/breadth.
#[derive(Clone, Debug)]
pub struct KgcnConfig {
    /// Shared baseline hyper-parameters.
    pub base: BaselineConfig,
    /// Propagation layers H.
    pub layers: usize,
    /// Neighbors sampled per node K.
    pub neighbor_k: usize,
    /// Representation-update aggregator.
    pub aggregator: Aggregator,
}

impl Default for KgcnConfig {
    fn default() -> Self {
        KgcnConfig {
            base: BaselineConfig::default(),
            layers: 2,
            neighbor_k: 4,
            aggregator: Aggregator::Gcn,
        }
    }
}

/// A KGCN model bound to one dataset.
pub struct Kgcn {
    config: KgcnConfig,
    graph: KgGraph,
    sampler: NeighborSampler,
    store: ParamStore,
    user_emb: ParamId,
    prop: PropagationParams,
    item_entity: Vec<u32>,
    groups: Vec<Vec<u32>>,
    group_size: usize,
    num_items: u32,
}

impl Kgcn {
    /// Build an untrained model over `ds`.
    pub fn new(ds: &GroupDataset, config: KgcnConfig) -> Self {
        let graph = KgGraph::from_store(&ds.kg);
        let mut store = ParamStore::new();
        let user_emb = store.register(
            "user_emb",
            init::xavier_uniform(
                ds.num_users as usize,
                config.base.dim,
                derive_seed(config.base.seed, "kgcn-user"),
            ),
        );
        let kcfg = kgag::KgagConfig {
            dim: config.base.dim,
            layers: config.layers,
            backend: config.aggregator,
            seed: config.base.seed,
            ..kgag::KgagConfig::default()
        };
        let prop = PropagationParams::register_for_graph(
            &mut store,
            graph.num_entities(),
            graph.num_relation_slots(),
            &kcfg,
        );
        let sampler =
            NeighborSampler::new(config.neighbor_k, derive_seed(config.base.seed, "kgcn-sampler"));
        Kgcn {
            config,
            graph,
            sampler,
            store,
            user_emb,
            prop,
            item_entity: ds.item_entity.iter().map(|e| e.0).collect(),
            groups: ds.groups.clone(),
            group_size: ds.group_size,
            num_items: ds.num_items,
        }
    }

    /// Propagated item representations under a `[B, d]` query.
    fn item_rep(&self, tape: &mut Tape<'_>, items: &[u32], query: NodeId, salt: u64) -> NodeId {
        let targets: Vec<u32> = items.iter().map(|&v| self.item_entity[v as usize]).collect();
        let rf = self.sampler.receptive_field(&self.graph, &targets, self.config.layers, salt);
        propagate(tape, &self.prop, self.config.aggregator, &rf, query)
    }

    /// Train on the combined objective; returns `(group, user)` losses
    /// per epoch.
    pub fn fit(&mut self, split: &DatasetSplit) -> Vec<(f32, f32)> {
        let cfg = self.config.clone();
        let mut adam = Adam::with_decay(cfg.base.learning_rate, cfg.base.lambda);
        let mut rng = SplitMix64::new(derive_seed(cfg.base.seed, "kgcn-fit"));
        let group_known: Vec<(u32, u32)> =
            split.group.train.iter().chain(&split.group.val).copied().collect();
        let group_neg = NegativeSampler::new(group_known, self.num_items);
        let user_neg = NegativeSampler::from_interactions(&split.user_train);
        let mut group_pairs = split.group.train.clone();
        let mut user_pairs = split.user_train.pairs();
        assert!(!group_pairs.is_empty() && !user_pairs.is_empty(), "empty training data");
        let mut cursor = 0usize;
        let mut losses = Vec::with_capacity(cfg.base.epochs);

        for epoch in 0..cfg.base.epochs {
            rng.shuffle(&mut group_pairs);
            rng.shuffle(&mut user_pairs);
            let (mut g_sum, mut u_sum, mut n) = (0.0f64, 0.0f64, 0usize);
            for (bi, chunk) in group_pairs.chunks(cfg.base.batch_size).enumerate() {
                let salt = derive_seed(cfg.base.seed, "kgcn-step")
                    ^ (epoch as u64).wrapping_mul(1_000_003)
                    ^ (bi as u64).wrapping_mul(89);
                let l = self.group_size;
                let mut members = Vec::with_capacity(chunk.len() * l);
                let mut pos = Vec::with_capacity(chunk.len());
                let mut neg = Vec::with_capacity(chunk.len());
                for &(g, v) in chunk {
                    members.extend_from_slice(&self.groups[g as usize]);
                    pos.push(v);
                    neg.push(group_neg.sample(g, &mut rng));
                }
                let half = cfg.base.user_batch_size / 2;
                let mut uu = Vec::with_capacity(2 * half);
                let mut uv = Vec::with_capacity(2 * half);
                let mut ut = Vec::with_capacity(2 * half);
                for _ in 0..half {
                    let (u, v) = user_pairs[cursor % user_pairs.len()];
                    cursor += 1;
                    uu.push(u);
                    uv.push(v);
                    ut.push(1.0);
                    uu.push(u);
                    uv.push(user_neg.sample(u, &mut rng));
                    ut.push(0.0);
                }
                let (grads, gl, ul) = {
                    let mut tape = Tape::new(&self.store);
                    // group tower: query = mean member embedding
                    let m = tape.gather(self.user_emb, &members);
                    let g_rep = tape.group_mean(m, l);
                    let p_rep = self.item_rep(&mut tape, &pos, g_rep, salt ^ 0x11);
                    let n_rep = self.item_rep(&mut tape, &neg, g_rep, salt ^ 0x22);
                    let s_pos = tape.row_dot(g_rep, p_rep);
                    let s_neg = tape.row_dot(g_rep, n_rep);
                    let lg = margin_group_loss(&mut tape, s_pos, s_neg, cfg.base.margin);
                    // user tower: KGCN proper
                    let ue = tape.gather(self.user_emb, &uu);
                    let v_rep = self.item_rep(&mut tape, &uv, ue, salt ^ 0x33);
                    let logits = tape.row_dot(ue, v_rep);
                    let lu = user_log_loss(&mut tape, logits, Tensor::col_vector(&ut));
                    let lgw = tape.scale(lg, cfg.base.beta);
                    let luw = tape.scale(lu, 1.0 - cfg.base.beta);
                    let total = tape.add(lgw, luw);
                    (tape.backward(total), tape.value(lg).item(), tape.value(lu).item())
                };
                adam.step(&mut self.store, &grads);
                g_sum += gl as f64;
                u_sum += ul as f64;
                n += 1;
            }
            losses.push(((g_sum / n.max(1) as f64) as f32, (u_sum / n.max(1) as f64) as f32));
        }
        losses
    }
}

impl IndividualScorer for Kgcn {
    fn score_user(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(256) {
            let users = vec![user; chunk.len()];
            let mut tape = Tape::new(&self.store);
            let ue = tape.gather(self.user_emb, &users);
            let salt = derive_seed(self.config.base.seed, "kgcn-score") ^ user as u64;
            let v_rep = self.item_rep(&mut tape, chunk, ue, salt);
            let logits = tape.row_dot(ue, v_rep);
            out.extend(tape.value(logits).data().iter().map(|&s| kgag_tensor::tensor::sigmoid(s)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
    use kgag_data::split::split_dataset;

    #[test]
    fn kgcn_trains_and_scores() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 5);
        let mut model = Kgcn::new(
            &ds,
            KgcnConfig {
                base: BaselineConfig { epochs: 4, ..Default::default() },
                ..Default::default()
            },
        );
        let losses = model.fit(&split);
        assert_eq!(losses.len(), 4);
        assert!(losses.iter().all(|(g, u)| g.is_finite() && u.is_finite()));
        let scores = model.score_user(1, &[0, 1, 2]);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn group_loss_decreases() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 5);
        let mut model = Kgcn::new(
            &ds,
            KgcnConfig {
                base: BaselineConfig { epochs: 10, ..Default::default() },
                ..Default::default()
            },
        );
        let losses = model.fit(&split);
        assert!(
            losses.last().unwrap().0 < losses.first().unwrap().0,
            "group loss should fall: {losses:?}"
        );
    }
}
