//! Predefined score-aggregation strategies and the adaptor that turns an
//! individual recommender into a group recommender.
//!
//! The paper's memory-based comparison points combine an individual
//! scorer with one of three classic strategies: *average satisfaction*
//! [4], *least misery* [5] and *maximum pleasure* [4]. They treat every
//! member identically — exactly the limitation KGAG's attention is built
//! to remove.

use kgag_eval::GroupScorer;

/// A model that scores items for a single user.
pub trait IndividualScorer {
    /// Scores aligned with `items` for `user` (higher = better).
    fn score_user(&self, user: u32, items: &[u32]) -> Vec<f32>;
}

/// A predefined static aggregation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreAggregator {
    /// Mean of member scores (AVG).
    Average,
    /// Minimum of member scores (LM) — the group is only as happy as its
    /// least happy member.
    LeastMisery,
    /// Maximum of member scores (MP).
    MaxPleasure,
}

impl ScoreAggregator {
    /// Aggregate one item's member scores.
    ///
    /// # Panics
    /// Panics on an empty score list.
    pub fn aggregate(&self, member_scores: &[f32]) -> f32 {
        assert!(!member_scores.is_empty(), "cannot aggregate zero members");
        match self {
            ScoreAggregator::Average => {
                member_scores.iter().sum::<f32>() / member_scores.len() as f32
            }
            ScoreAggregator::LeastMisery => {
                member_scores.iter().copied().fold(f32::INFINITY, f32::min)
            }
            ScoreAggregator::MaxPleasure => {
                member_scores.iter().copied().fold(f32::NEG_INFINITY, f32::max)
            }
        }
    }

    /// Short label used in tables ("AVG" / "LM" / "MP").
    pub fn label(&self) -> &'static str {
        match self {
            ScoreAggregator::Average => "AVG",
            ScoreAggregator::LeastMisery => "LM",
            ScoreAggregator::MaxPleasure => "MP",
        }
    }

    /// All three strategies, in the paper's order of discussion.
    pub fn all() -> [ScoreAggregator; 3] {
        [ScoreAggregator::LeastMisery, ScoreAggregator::MaxPleasure, ScoreAggregator::Average]
    }
}

/// Turns an [`IndividualScorer`] plus a static aggregator into a
/// [`GroupScorer`] for the shared evaluation protocol.
pub struct AggregatedGroupScorer<'a, S: IndividualScorer> {
    model: &'a S,
    groups: &'a [Vec<u32>],
    aggregator: ScoreAggregator,
}

impl<'a, S: IndividualScorer> AggregatedGroupScorer<'a, S> {
    /// Wrap `model` for the given group membership table.
    pub fn new(model: &'a S, groups: &'a [Vec<u32>], aggregator: ScoreAggregator) -> Self {
        AggregatedGroupScorer { model, groups, aggregator }
    }
}

impl<S: IndividualScorer> GroupScorer for AggregatedGroupScorer<'_, S> {
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32> {
        let members = &self.groups[group as usize];
        assert!(!members.is_empty(), "group {group} has no members");
        let per_member: Vec<Vec<f32>> =
            members.iter().map(|&u| self.model.score_user(u, items)).collect();
        (0..items.len())
            .map(|i| {
                let col: Vec<f32> = per_member.iter().map(|row| row[i]).collect();
                self.aggregator.aggregate(&col)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_semantics() {
        let s = [0.2f32, 0.8, 0.5];
        assert!((ScoreAggregator::Average.aggregate(&s) - 0.5).abs() < 1e-6);
        assert_eq!(ScoreAggregator::LeastMisery.aggregate(&s), 0.2);
        assert_eq!(ScoreAggregator::MaxPleasure.aggregate(&s), 0.8);
    }

    #[test]
    fn labels() {
        assert_eq!(ScoreAggregator::Average.label(), "AVG");
        assert_eq!(ScoreAggregator::LeastMisery.label(), "LM");
        assert_eq!(ScoreAggregator::MaxPleasure.label(), "MP");
        assert_eq!(ScoreAggregator::all().len(), 3);
    }

    struct Fake;
    impl IndividualScorer for Fake {
        fn score_user(&self, user: u32, items: &[u32]) -> Vec<f32> {
            // user 0 loves item 0, user 1 loves item 1
            items.iter().map(|&v| if v == user { 1.0 } else { 0.1 }).collect()
        }
    }

    #[test]
    fn aggregated_group_scorer_combines_members() {
        let groups = vec![vec![0u32, 1]];
        let items = [0u32, 1, 2];
        let lm = AggregatedGroupScorer::new(&Fake, &groups, ScoreAggregator::LeastMisery);
        assert_eq!(lm.score(0, &items), vec![0.1, 0.1, 0.1]);
        let mp = AggregatedGroupScorer::new(&Fake, &groups, ScoreAggregator::MaxPleasure);
        assert_eq!(mp.score(0, &items), vec![1.0, 1.0, 0.1]);
        let avg = AggregatedGroupScorer::new(&Fake, &groups, ScoreAggregator::Average);
        assert!((avg.score(0, &items)[0] - 0.55).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero members")]
    fn empty_members_panic() {
        ScoreAggregator::Average.aggregate(&[]);
    }
}
