//! MoSAN — medley of sub-attention networks for group recommendation
//! (Tran et al., SIGIR 2019 [16]).
//!
//! Each member's sub-attention network attends over her *peers* to build
//! a context vector; the group representation is the average of those
//! contexts. Crucially — and this is the paper's criticism — the
//! attention does **not** condition on the candidate item.
//!
//! Following §IV-D's fair-comparison setup, the user-context vectors of
//! the original model are replaced by *knowledge-aware* user vectors:
//! user/item embeddings are initialised from TransE trained on the
//! collaborative knowledge graph, then fine-tuned end-to-end on the
//! combined Eq. 20 objective.

use crate::aggregators::IndividualScorer;
use crate::BaselineConfig;
use kgag::loss::{margin_group_loss, user_log_loss};
use kgag_data::split::{DatasetSplit, NegativeSampler};
use kgag_data::GroupDataset;
use kgag_eval::GroupScorer;
use kgag_kg::transe::{self, TransEConfig};
use kgag_tensor::optim::{Adam, Optimizer};
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_tensor::{init, ParamId, ParamStore, Tape, Tensor};

/// MoSAN hyper-parameters.
#[derive(Clone, Debug)]
pub struct MosanConfig {
    /// Shared baseline hyper-parameters.
    pub base: BaselineConfig,
    /// TransE pre-training of the knowledge-aware user/item vectors
    /// (`None` = random initialization, the "no KG" variant).
    pub transe: Option<TransEConfig>,
}

impl Default for MosanConfig {
    fn default() -> Self {
        let base = BaselineConfig::default();
        let transe = TransEConfig { dim: base.dim, epochs: 15, ..TransEConfig::default() };
        MosanConfig { base, transe: Some(transe) }
    }
}

/// A MoSAN model bound to one dataset.
pub struct Mosan {
    config: MosanConfig,
    store: ParamStore,
    user_emb: ParamId,
    item_emb: ParamId,
    att_w1: ParamId,
    att_w2: ParamId,
    att_b: ParamId,
    att_v: ParamId,
    groups: Vec<Vec<u32>>,
    group_size: usize,
    num_items: u32,
}

impl Mosan {
    /// Build the model, optionally pre-training TransE embeddings over
    /// the collaborative KG (built from the split's training
    /// interactions only).
    pub fn new(ds: &GroupDataset, split: &DatasetSplit, config: MosanConfig) -> Self {
        let d = config.base.dim;
        let seed = |l: &str| derive_seed(config.base.seed, l);
        let (user_init, item_init) = match &config.transe {
            Some(tcfg) => {
                assert_eq!(tcfg.dim, d, "TransE dim must match model dim");
                let ckg = ds.collaborative_kg_from(&split.user_train);
                // train TransE over the collaborative KG triples: rebuild
                // a store with interact edges included
                let mut triples = ds.kg.clone();
                let interact = triples.add_relation(Some("Interact"));
                let base_entities = ds.kg.num_entities();
                for u in 0..ds.num_users {
                    triples.add_entity(None);
                    let _ = u;
                }
                for (u, v) in split.user_train.pairs() {
                    triples.add(kgag_kg::Triple {
                        head: kgag_kg::EntityId(base_entities + u),
                        relation: interact,
                        tail: ds.item_entity[v as usize],
                    });
                }
                let model = transe::train(&triples, tcfg);
                let mut user_init = Tensor::zeros(ds.num_users as usize, d);
                for u in 0..ds.num_users {
                    user_init
                        .row_mut(u as usize)
                        .copy_from_slice(model.entities.row(ckg.user_entity(u).0 as usize));
                }
                let mut item_init = Tensor::zeros(ds.num_items as usize, d);
                for v in 0..ds.num_items {
                    item_init
                        .row_mut(v as usize)
                        .copy_from_slice(model.entities.row(ds.item_entity[v as usize].0 as usize));
                }
                (user_init, item_init)
            }
            None => (
                init::xavier_uniform(ds.num_users as usize, d, seed("mosan-u")),
                init::xavier_uniform(ds.num_items as usize, d, seed("mosan-v")),
            ),
        };
        let mut store = ParamStore::new();
        let user_emb = store.register("user_emb", user_init);
        let item_emb = store.register("item_emb", item_init);
        let att_w1 = store.register("att_w1", init::xavier_uniform(d, d, seed("mosan-w1")));
        let att_w2 = store.register("att_w2", init::xavier_uniform(d, d, seed("mosan-w2")));
        let att_b = store.register("att_b", Tensor::zeros(1, d));
        let att_v = store.register("att_v", init::xavier_uniform(d, 1, seed("mosan-vc")));
        Mosan {
            config,
            store,
            user_emb,
            item_emb,
            att_w1,
            att_w2,
            att_b,
            att_v,
            groups: ds.groups.clone(),
            group_size: ds.group_size,
            num_items: ds.num_items,
        }
    }

    /// Pair-expanded member indices for the sub-attention networks:
    /// `(left, right)` where for every instance, member `i` and peer `j≠i`
    /// contribute one row each.
    fn pair_indices(&self, flat_members: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let l = self.group_size;
        let n_inst = flat_members.len() / l;
        let mut left = Vec::with_capacity(n_inst * l * (l - 1));
        let mut right = Vec::with_capacity(n_inst * l * (l - 1));
        for inst in 0..n_inst {
            let block = &flat_members[inst * l..(inst + 1) * l];
            for i in 0..l {
                for (j, &peer) in block.iter().enumerate() {
                    if j != i {
                        left.push(block[i]);
                        right.push(peer);
                    }
                }
            }
        }
        (left, right)
    }

    /// Group representations for a batch of instances (`flat_members` is
    /// `B·L` user ids) — a `[B, d]` node. The sub-attention is
    /// item-independent by design.
    fn group_rep(&self, tape: &mut Tape<'_>, flat_members: &[u32]) -> kgag_tensor::NodeId {
        let l = self.group_size;
        assert!(l >= 2, "MoSAN needs at least two members");
        let (left, right) = self.pair_indices(flat_members);
        let u_left = tape.gather(self.user_emb, &left);
        let u_right = tape.gather(self.user_emb, &right);
        let w1 = tape.param(self.att_w1);
        let w2 = tape.param(self.att_w2);
        let b = tape.param(self.att_b);
        let v = tape.param(self.att_v);
        let h1 = tape.matmul(u_left, w1);
        let h2 = tape.matmul(u_right, w2);
        let sum = tape.add(h1, h2);
        let biased = tape.add_row(sum, b);
        let act = tape.relu(biased);
        let scores = tape.matmul(act, v); // [B·L·(L−1), 1]
        let weights = tape.softmax_groups(scores, l - 1);
        let ctx = tape.group_weighted_sum(weights, u_right, l - 1); // [B·L, d]
        tape.group_mean(ctx, l) // [B, d]
    }

    /// Train on the combined objective; returns `(group, user)` losses.
    pub fn fit(&mut self, split: &DatasetSplit) -> Vec<(f32, f32)> {
        let cfg = self.config.base.clone();
        let mut adam = Adam::with_decay(cfg.learning_rate, cfg.lambda);
        let mut rng = SplitMix64::new(derive_seed(cfg.seed, "mosan-fit"));
        let group_known: Vec<(u32, u32)> =
            split.group.train.iter().chain(&split.group.val).copied().collect();
        let group_neg = NegativeSampler::new(group_known, self.num_items);
        let user_neg = NegativeSampler::from_interactions(&split.user_train);
        let mut group_pairs = split.group.train.clone();
        let mut user_pairs = split.user_train.pairs();
        assert!(!group_pairs.is_empty() && !user_pairs.is_empty(), "empty training data");
        let mut cursor = 0usize;
        let mut losses = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            rng.shuffle(&mut group_pairs);
            rng.shuffle(&mut user_pairs);
            let (mut g_sum, mut u_sum, mut n) = (0.0f64, 0.0f64, 0usize);
            for chunk in group_pairs.chunks(cfg.batch_size) {
                let l = self.group_size;
                let mut members = Vec::with_capacity(chunk.len() * l);
                let mut pos = Vec::with_capacity(chunk.len());
                let mut neg = Vec::with_capacity(chunk.len());
                for &(g, v) in chunk {
                    members.extend_from_slice(&self.groups[g as usize]);
                    pos.push(v);
                    neg.push(group_neg.sample(g, &mut rng));
                }
                let half = cfg.user_batch_size / 2;
                let mut uu = Vec::with_capacity(2 * half);
                let mut uv = Vec::with_capacity(2 * half);
                let mut ut = Vec::with_capacity(2 * half);
                for _ in 0..half {
                    let (u, v) = user_pairs[cursor % user_pairs.len()];
                    cursor += 1;
                    uu.push(u);
                    uv.push(v);
                    ut.push(1.0);
                    uu.push(u);
                    uv.push(user_neg.sample(u, &mut rng));
                    ut.push(0.0);
                }
                let (grads, gl, ul) = {
                    let mut tape = Tape::new(&self.store);
                    let g_rep = self.group_rep(&mut tape, &members);
                    let p = tape.gather(self.item_emb, &pos);
                    let nn = tape.gather(self.item_emb, &neg);
                    let s_pos = tape.row_dot(g_rep, p);
                    let s_neg = tape.row_dot(g_rep, nn);
                    let lg = margin_group_loss(&mut tape, s_pos, s_neg, cfg.margin);
                    let ue = tape.gather(self.user_emb, &uu);
                    let ve = tape.gather(self.item_emb, &uv);
                    let logits = tape.row_dot(ue, ve);
                    let lu = user_log_loss(&mut tape, logits, Tensor::col_vector(&ut));
                    let lgw = tape.scale(lg, cfg.beta);
                    let luw = tape.scale(lu, 1.0 - cfg.beta);
                    let total = tape.add(lgw, luw);
                    (tape.backward(total), tape.value(lg).item(), tape.value(lu).item())
                };
                adam.step(&mut self.store, &grads);
                g_sum += gl as f64;
                u_sum += ul as f64;
                n += 1;
            }
            losses.push(((g_sum / n.max(1) as f64) as f32, (u_sum / n.max(1) as f64) as f32));
        }
        losses
    }
}

impl GroupScorer for Mosan {
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32> {
        // the group representation is item-independent: compute it once
        let members = &self.groups[group as usize];
        let mut tape = Tape::new(&self.store);
        let g_rep = self.group_rep(&mut tape, members);
        let g = tape.value(g_rep).clone();
        let v = self.store.value(self.item_emb);
        items.iter().map(|&i| kgag_tensor::tensor::sigmoid(g.row_dot(0, v, i as usize))).collect()
    }
}

impl IndividualScorer for Mosan {
    fn score_user(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let u = self.store.value(self.user_emb);
        let v = self.store.value(self.item_emb);
        items
            .iter()
            .map(|&i| kgag_tensor::tensor::sigmoid(u.row_dot(user as usize, v, i as usize)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
    use kgag_data::split::split_dataset;

    fn quick_cfg(epochs: usize, transe: bool) -> MosanConfig {
        let base = BaselineConfig { epochs, ..Default::default() };
        let transe =
            transe.then(|| TransEConfig { dim: base.dim, epochs: 3, ..TransEConfig::default() });
        MosanConfig { base, transe }
    }

    #[test]
    fn trains_and_scores_groups() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 9);
        let mut model = Mosan::new(&ds, &split, quick_cfg(4, false));
        let losses = model.fit(&split);
        assert!(losses.last().unwrap().0 < losses.first().unwrap().0, "{losses:?}");
        let scores = model.score(0, &[0, 1, 2, 3]);
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn transe_initialization_differs_from_random() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 9);
        let with = Mosan::new(&ds, &split, quick_cfg(1, true));
        let without = Mosan::new(&ds, &split, quick_cfg(1, false));
        assert_ne!(with.store.value(with.user_emb), without.store.value(without.user_emb));
    }

    #[test]
    fn group_rep_is_item_independent() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 9);
        let mut model = Mosan::new(&ds, &split, quick_cfg(2, false));
        model.fit(&split);
        // scoring different item lists must agree on shared items
        let a = model.score(0, &[3, 7]);
        let b = model.score(0, &[7]);
        assert!((a[1] - b[0]).abs() < 1e-6);
    }

    #[test]
    fn pair_indices_layout() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 9);
        let model = Mosan::new(&ds, &split, quick_cfg(1, false));
        // group size 8 at tiny scale: instance of one group
        let members: Vec<u32> = (0..model.group_size as u32).collect();
        let (left, right) = model.pair_indices(&members);
        let l = model.group_size;
        assert_eq!(left.len(), l * (l - 1));
        // first block: member 0 against every peer
        for j in 0..(l - 1) {
            assert_eq!(left[j], 0);
            assert_eq!(right[j], (j + 1) as u32);
        }
        // no self-pairs anywhere
        assert!(left.iter().zip(&right).all(|(a, b)| a != b));
    }
}
