//! Popularity baseline: score every item by its training interaction
//! count, identically for every user and group.
//!
//! Not part of the paper's Table II — included as a non-learned sanity
//! floor: any trained model that fails to beat popularity on the
//! synthetic datasets indicates a data-generation or training bug.

use crate::aggregators::IndividualScorer;
use kgag_data::Interactions;
use kgag_eval::GroupScorer;

/// Item popularity scores normalised to `[0, 1]`.
#[derive(Clone, Debug)]
pub struct Popularity {
    scores: Vec<f32>,
}

impl Popularity {
    /// Count interactions per item in `train`.
    pub fn fit(train: &Interactions) -> Self {
        let mut counts = vec![0u32; train.num_items() as usize];
        for (_, v) in train.pairs() {
            counts[v as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0).max(1) as f32;
        Popularity { scores: counts.into_iter().map(|c| c as f32 / max).collect() }
    }

    /// Popularity of one item.
    pub fn of(&self, item: u32) -> f32 {
        self.scores[item as usize]
    }
}

impl IndividualScorer for Popularity {
    fn score_user(&self, _user: u32, items: &[u32]) -> Vec<f32> {
        items.iter().map(|&v| self.of(v)).collect()
    }
}

impl GroupScorer for Popularity {
    fn score(&self, _group: u32, items: &[u32]) -> Vec<f32> {
        items.iter().map(|&v| self.of(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_normalises() {
        let mut y = Interactions::new(3, 4);
        y.insert(0, 1);
        y.insert(1, 1);
        y.insert(2, 1);
        y.insert(0, 2);
        let p = Popularity::fit(&y);
        assert_eq!(p.of(1), 1.0);
        assert!((p.of(2) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(p.of(0), 0.0);
        assert_eq!(p.score_user(9, &[1, 2]), p.score(5, &[1, 2]));
    }

    #[test]
    fn empty_train_is_all_zero() {
        let y = Interactions::new(2, 3);
        let p = Popularity::fit(&y);
        assert!(p.score(0, &[0, 1, 2]).iter().all(|&s| s == 0.0));
    }
}
