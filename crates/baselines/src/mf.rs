//! Matrix factorization (the paper's "CF for individual recommendation"
//! [35]), trained on the combined objective of Eq. 20 like every method
//! in Table II.
//!
//! During training the group prediction is the inner product of the
//! *mean member embedding* with the item embedding (the differentiable
//! counterpart of average aggregation); at evaluation time the caller
//! picks any static aggregator over the per-member sigmoid scores
//! (CF+AVG / CF+LM / CF+MP).

use crate::aggregators::IndividualScorer;
use crate::BaselineConfig;
use kgag::loss::{margin_group_loss, user_log_loss};
use kgag_data::split::{DatasetSplit, NegativeSampler};
use kgag_data::GroupDataset;
use kgag_tensor::optim::{Adam, Optimizer};
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_tensor::{init, ParamId, ParamStore, Tape, Tensor};

/// Configuration alias — MF uses the shared baseline hyper-parameters.
pub type MfConfig = BaselineConfig;

/// A trained (or trainable) MF model bound to one dataset.
pub struct MatrixFactorization {
    config: MfConfig,
    store: ParamStore,
    user_emb: ParamId,
    item_emb: ParamId,
    groups: Vec<Vec<u32>>,
    group_size: usize,
    num_items: u32,
}

impl MatrixFactorization {
    /// Build an untrained model over `ds`.
    pub fn new(ds: &GroupDataset, config: MfConfig) -> Self {
        let mut store = ParamStore::new();
        let user_emb = store.register(
            "user_emb",
            init::xavier_uniform(ds.num_users as usize, config.dim, derive_seed(config.seed, "u")),
        );
        let item_emb = store.register(
            "item_emb",
            init::xavier_uniform(ds.num_items as usize, config.dim, derive_seed(config.seed, "v")),
        );
        MatrixFactorization {
            config,
            store,
            user_emb,
            item_emb,
            groups: ds.groups.clone(),
            group_size: ds.group_size,
            num_items: ds.num_items,
        }
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Train with the combined loss `β·L_group + (1−β)·L_user + λ‖Θ‖²`.
    /// Returns the per-epoch `(group, user)` losses.
    pub fn fit(&mut self, split: &DatasetSplit) -> Vec<(f32, f32)> {
        let cfg = self.config.clone();
        let mut adam = Adam::with_decay(cfg.learning_rate, cfg.lambda);
        let mut rng = SplitMix64::new(derive_seed(cfg.seed, "mf-fit"));
        let group_known: Vec<(u32, u32)> =
            split.group.train.iter().chain(&split.group.val).copied().collect();
        let group_neg = NegativeSampler::new(group_known, self.num_items);
        let user_neg = NegativeSampler::from_interactions(&split.user_train);
        let mut group_pairs = split.group.train.clone();
        let mut user_pairs = split.user_train.pairs();
        assert!(!group_pairs.is_empty() && !user_pairs.is_empty(), "empty training data");
        let mut cursor = 0usize;
        let mut losses = Vec::with_capacity(cfg.epochs);

        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut group_pairs);
            rng.shuffle(&mut user_pairs);
            let mut g_sum = 0.0f64;
            let mut u_sum = 0.0f64;
            let mut n = 0usize;
            for chunk in group_pairs.chunks(cfg.batch_size) {
                let l = self.group_size;
                let mut members = Vec::with_capacity(chunk.len() * l);
                let mut pos = Vec::with_capacity(chunk.len());
                let mut neg = Vec::with_capacity(chunk.len());
                for &(g, v) in chunk {
                    members.extend_from_slice(&self.groups[g as usize]);
                    pos.push(v);
                    neg.push(group_neg.sample(g, &mut rng));
                }
                let half = cfg.user_batch_size / 2;
                let mut uu = Vec::with_capacity(2 * half);
                let mut uv = Vec::with_capacity(2 * half);
                let mut ut = Vec::with_capacity(2 * half);
                for _ in 0..half {
                    let (u, v) = user_pairs[cursor % user_pairs.len()];
                    cursor += 1;
                    uu.push(u);
                    uv.push(v);
                    ut.push(1.0);
                    uu.push(u);
                    uv.push(user_neg.sample(u, &mut rng));
                    ut.push(0.0);
                }
                let (grads, gl, ul) = {
                    let mut tape = Tape::new(&self.store);
                    let m = tape.gather(self.user_emb, &members);
                    let g_rep = tape.group_mean(m, l);
                    let p = tape.gather(self.item_emb, &pos);
                    let nn = tape.gather(self.item_emb, &neg);
                    let s_pos = tape.row_dot(g_rep, p);
                    let s_neg = tape.row_dot(g_rep, nn);
                    let lg = margin_group_loss(&mut tape, s_pos, s_neg, cfg.margin);
                    let ue = tape.gather(self.user_emb, &uu);
                    let ve = tape.gather(self.item_emb, &uv);
                    let logits = tape.row_dot(ue, ve);
                    let lu = user_log_loss(&mut tape, logits, Tensor::col_vector(&ut));
                    let lgw = tape.scale(lg, cfg.beta);
                    let luw = tape.scale(lu, 1.0 - cfg.beta);
                    let total = tape.add(lgw, luw);
                    (tape.backward(total), tape.value(lg).item(), tape.value(lu).item())
                };
                adam.step(&mut self.store, &grads);
                g_sum += gl as f64;
                u_sum += ul as f64;
                n += 1;
            }
            losses.push(((g_sum / n.max(1) as f64) as f32, (u_sum / n.max(1) as f64) as f32));
        }
        losses
    }
}

impl IndividualScorer for MatrixFactorization {
    fn score_user(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let u = self.store.value(self.user_emb);
        let v = self.store.value(self.item_emb);
        items
            .iter()
            .map(|&i| kgag_tensor::tensor::sigmoid(u.row_dot(user as usize, v, i as usize)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
    use kgag_data::split::split_dataset;

    fn fixture() -> (GroupDataset, DatasetSplit) {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 3);
        (ds, split)
    }

    #[test]
    fn training_reduces_user_loss() {
        let (ds, split) = fixture();
        let mut mf = MatrixFactorization::new(
            &ds,
            MfConfig { epochs: 15, learning_rate: 0.05, ..Default::default() },
        );
        let losses = mf.fit(&split);
        let first = losses.first().unwrap().1;
        let last = losses.last().unwrap().1;
        assert!(last < first, "user loss should fall: {first} -> {last}");
    }

    #[test]
    fn scores_are_probabilities() {
        let (ds, split) = fixture();
        let mut mf = MatrixFactorization::new(&ds, MfConfig { epochs: 2, ..Default::default() });
        mf.fit(&split);
        let scores = mf.score_user(0, &[0, 1, 2, 3]);
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn trained_mf_ranks_positives_above_random_items() {
        let (ds, split) = fixture();
        let mut mf = MatrixFactorization::new(
            &ds,
            MfConfig { epochs: 40, learning_rate: 0.05, ..Default::default() },
        );
        mf.fit(&split);
        // average score of observed positives vs. random items
        let mut pos_sum = 0.0f64;
        let mut pos_n = 0usize;
        let mut all_sum = 0.0f64;
        let mut all_n = 0usize;
        for u in 0..ds.num_users.min(100) {
            let pos = split.user_train.items_of(u);
            if pos.is_empty() {
                continue;
            }
            for &s in &mf.score_user(u, pos) {
                pos_sum += s as f64;
                pos_n += 1;
            }
            let probe: Vec<u32> = (0..ds.num_items).step_by(7).collect();
            for &s in &mf.score_user(u, &probe) {
                all_sum += s as f64;
                all_n += 1;
            }
        }
        let pos_mean = pos_sum / pos_n as f64;
        let all_mean = all_sum / all_n as f64;
        assert!(
            pos_mean > all_mean + 0.05,
            "positives {pos_mean:.3} should beat random {all_mean:.3}"
        );
    }
}
