//! Quickstart: generate a small dataset, train KGAG, evaluate it, and
//! recommend five items to one group.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_eval::{top_k_excluding, EvalConfig};

fn main() {
    // 1. a synthetic MovieLens-style dataset with random groups of 8
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
    println!(
        "dataset: {} ({} groups, {} items, {} users)",
        ds.name,
        ds.num_groups(),
        ds.num_items,
        ds.num_users
    );

    // 2. the paper's 60/20/20 split
    let split = split_dataset(&ds, 42);

    // 3. train KGAG end-to-end
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 8, ..Default::default() });
    let report = model.fit(&split);
    println!(
        "trained {} epochs; group loss {:.4} -> {:.4}",
        report.epochs.len(),
        report.epochs.first().unwrap().group,
        report.epochs.last().unwrap().group,
    );

    // 4. evaluate on the held-out test positives
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    let summary = model.evaluate(&cases, &EvalConfig::default());
    println!("test  {summary}");

    // 5. recommend: rank the full catalog for group 0, skipping its
    //    known training positives
    let group = 0u32;
    let all_items: Vec<u32> = (0..ds.num_items).collect();
    let scores = model.score_group_items(group, &all_items);
    let top = top_k_excluding(&scores, 5, split.group.train_items(group));
    println!("\ntop-5 recommendations for group {group} (members {:?}):", ds.members(group));
    for (rank, &v) in top.iter().enumerate() {
        let marker = if ds.group_pos.contains(group, v) { "  <- held-out positive!" } else { "" };
        println!("  {}. item v_{v} (score {:.4}){marker}", rank + 1, scores[v as usize]);
    }
}
