//! Movie night: a MovieLens-style scenario end to end.
//!
//! Eight people who have never met share a row on a long-haul flight
//! (the paper's *occasional group*). We train KGAG on the synthetic
//! MovieLens-20M-Rand stand-in, pick one such group, and walk through
//! what the model recommends and *why* — including the knowledge-graph
//! facts behind the top pick.
//!
//! ```text
//! cargo run --release --example movie_night
//! ```

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_data::world::relations;
use kgag_eval::{top_k_excluding, EvalConfig};

fn main() {
    let cfg = MovieLensConfig::at_scale(Scale::Tiny);
    let (world, rand_ds, _) = movielens_pair(&cfg);
    println!(
        "world: {} users, {} movies, KG with {} facts over {} entities",
        rand_ds.num_users,
        rand_ds.num_items,
        rand_ds.kg.len(),
        rand_ds.kg.num_entities()
    );

    let split = split_dataset(&rand_ds, 7);
    let mut model = Kgag::new(&rand_ds, &split, KgagConfig { epochs: 10, ..Default::default() });
    model.fit(&split);

    let cases = eval_cases(&rand_ds, &split.group, EvalBucket::Test);
    let summary = model.evaluate(&cases, &EvalConfig::default());
    println!("held-out ranking quality: {summary}\n");

    // pick a group with test positives for the walkthrough
    let group = cases.first().map(|c| c.group).unwrap_or(0);
    let members = rand_ds.members(group);
    println!("tonight's group g_{group}: {} strangers {:?}", members.len(), members);
    for &m in members.iter().take(3) {
        let prefs = &world.users[m as usize];
        let liked: Vec<usize> = prefs
            .genre_weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0.0)
            .map(|(g, _)| g)
            .collect();
        println!("  u_{m}: likes genres {liked:?}, influence {:+.2}", prefs.influence);
    }

    let all_items: Vec<u32> = (0..rand_ds.num_items).collect();
    let scores = model.score_group_items(group, &all_items);
    let top = top_k_excluding(&scores, 5, split.group.train_items(group));
    println!("\nrecommended for movie night:");
    for (rank, &v) in top.iter().enumerate() {
        let attrs = &world.items[v as usize];
        println!(
            "  {}. movie v_{v} (score {:.3}) — genres {:?}, director d_{}",
            rank + 1,
            scores[v as usize],
            attrs.genres,
            attrs.director
        );
    }

    // why the top pick? show the KG facts linking it to the catalog
    let best = top[0];
    println!("\nknowledge-graph facts about the top pick:");
    for t in rand_ds.kg.triples().iter().filter(|t| t.head.0 == best).take(6) {
        let rel = match t.relation.0 {
            relations::HAS_GENRE => "has_genre",
            relations::DIRECTED_BY => "directed_by",
            relations::STARS => "stars",
            relations::RELEASED_IN => "released_in",
            _ => "related_to",
        };
        println!("  (v_{best}, {rel}, e_{})", t.tail.0);
    }

    // and the attention decomposition for it
    println!("\nwho drove the decision?");
    print!("{}", model.explain(group, best));
}
