//! Restaurant party: the Yelp-style sparse-group scenario.
//!
//! Yelp groups are triangles of friends with roughly *one* observed
//! group interaction each — the extreme sparsity regime the paper
//! targets. This example builds the synthetic Yelp stand-in (complete
//! with the homophilous friendship graph and simulated co-visits),
//! trains KGAG, and compares it against the static aggregators on the
//! same split.
//!
//! ```text
//! cargo run --release --example restaurant_party
//! ```

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_baselines::{AggregatedGroupScorer, MatrixFactorization, MfConfig, ScoreAggregator};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::{evaluate_group_ranking, EvalConfig};

fn main() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let stats = ds.stats();
    println!(
        "Yelp stand-in: {} friend groups of {} over {} businesses \
         ({:.2} interactions/group — the paper's 1.00 regime)",
        stats.total_groups, stats.group_size, stats.total_items, stats.inter_per_group
    );

    let split = split_dataset(&ds, 21);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    println!("{} groups have a held-out co-visit to predict\n", cases.len());
    let ecfg = EvalConfig::default();

    // static aggregation baselines over a matrix-factorization scorer
    let mut mf = MatrixFactorization::new(&ds, MfConfig { epochs: 15, ..Default::default() });
    mf.fit(&split);
    for agg in ScoreAggregator::all() {
        let scorer = AggregatedGroupScorer::new(&mf, &ds.groups, agg);
        let s = evaluate_group_ranking(&scorer, ds.num_items, &cases, &ecfg);
        println!("CF+{:<4}  rec@5 {:.4}  hit@5 {:.4}", agg.label(), s.recall, s.hit);
    }

    // KGAG
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 15, ..Default::default() });
    model.fit(&split);
    let s = model.evaluate(&cases, &ecfg);
    println!("KGAG     rec@5 {:.4}  hit@5 {:.4}", s.recall, s.hit);
    println!(
        "\nnote: with one positive per group, rec@5 == hit@5 by definition — \
         exactly why the paper's Yelp columns coincide."
    );
    assert!((s.recall - s.hit).abs() < 1e-9);

    // show one group's recommendation
    if let Some(case) = cases.first() {
        let g = case.group;
        println!("\nfriend group g_{g} = {:?}", ds.members(g));
        let all: Vec<u32> = (0..ds.num_items).collect();
        let scores = model.score_group_items(g, &all);
        let top = kgag_eval::top_k_excluding(&scores, 3, split.group.train_items(g));
        for (rank, &v) in top.iter().enumerate() {
            let hit = if case.test_items.binary_search(&v).is_ok() {
                "  <- their actual co-visit"
            } else {
                ""
            };
            println!("  {}. business v_{v} (score {:.3}){hit}", rank + 1, scores[v as usize]);
        }
    }
}
