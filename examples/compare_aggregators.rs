//! Static aggregation strategies head-to-head.
//!
//! A miniature version of the paper's Table II restricted to the three
//! predefined strategies (average satisfaction, least misery, maximum
//! pleasure) over two individual recommenders (CF and KGCN), plus the
//! popularity floor. Useful for building intuition about *why* learned
//! preference aggregation has room to win: the best static strategy
//! depends on the dataset, and none of them adapts to the group or the
//! candidate item.
//!
//! For contrast, the tail rows train the full KGAG model once per
//! propagation backend (gcn, graphsage, kgnn-ls, interaction;
//! DESIGN.md §17) — the learned-attention counterpart every static
//! strategy is being compared against.
//!
//! ```text
//! cargo run --release --example compare_aggregators
//! ```

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Backend, Kgag, KgagConfig};
use kgag_baselines::{
    AggregatedGroupScorer, BaselineConfig, Kgcn, KgcnConfig, MatrixFactorization, MfConfig,
    Popularity, ScoreAggregator,
};
use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_eval::{evaluate_group_ranking, EvalConfig};

fn main() {
    let (_, rand_ds, simi_ds) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let ecfg = EvalConfig::default();

    println!("{:<14}{:>16}{:>16}", "", "ML-Rand hit@5", "ML-Simi hit@5");
    let mut rows: Vec<(String, [f64; 2])> = Vec::new();

    for (di, ds) in [&rand_ds, &simi_ds].into_iter().enumerate() {
        let split = split_dataset(ds, 11);
        let cases = eval_cases(ds, &split.group, EvalBucket::Test);

        let mut mf = MatrixFactorization::new(ds, MfConfig { epochs: 12, ..Default::default() });
        mf.fit(&split);
        let mut kgcn = Kgcn::new(
            ds,
            KgcnConfig {
                base: BaselineConfig { epochs: 12, ..Default::default() },
                ..Default::default()
            },
        );
        kgcn.fit(&split);
        let pop = Popularity::fit(&split.user_train);

        for agg in ScoreAggregator::all() {
            let name = format!("CF+{}", agg.label());
            let scorer = AggregatedGroupScorer::new(&mf, &ds.groups, agg);
            let s = evaluate_group_ranking(&scorer, ds.num_items, &cases, &ecfg);
            upsert(&mut rows, &name, di, s.hit);

            let name = format!("KGCN+{}", agg.label());
            let scorer = AggregatedGroupScorer::new(&kgcn, &ds.groups, agg);
            let s = evaluate_group_ranking(&scorer, ds.num_items, &cases, &ecfg);
            upsert(&mut rows, &name, di, s.hit);
        }
        let s = evaluate_group_ranking(&pop, ds.num_items, &cases, &ecfg);
        upsert(&mut rows, "Popularity", di, s.hit);

        // the learned model, once per propagation backend
        for backend in Backend::all() {
            let name = format!("KGAG/{}", backend.tag());
            let mut model =
                Kgag::new(ds, &split, KgagConfig { epochs: 3, backend, ..Default::default() });
            model.fit(&split);
            let s = model.evaluate(&cases, &ecfg);
            upsert(&mut rows, &name, di, s.hit);
        }
    }

    for (name, vals) in &rows {
        println!("{name:<14}{:>16.4}{:>16.4}", vals[0], vals[1]);
    }
    println!(
        "\ntakeaway: every strategy weighs members identically — the ceiling \
         KGAG's self-persistence + peer-influence attention is built to lift."
    );
}

fn upsert(rows: &mut Vec<(String, [f64; 2])>, name: &str, idx: usize, val: f64) {
    match rows.iter_mut().find(|(n, _)| n == name) {
        Some((_, vals)) => vals[idx] = val,
        None => {
            let mut vals = [0.0; 2];
            vals[idx] = val;
            rows.push((name.to_owned(), vals));
        }
    }
}
