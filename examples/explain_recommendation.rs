//! Interpretability (RQ4): reading KGAG's attention as an explanation.
//!
//! The paper's Fig. 6 shows one group where two members dominate the
//! decision; the SP/PI decomposition explains *why* — one is both
//! enthusiastic and supported by peers, the other is supported but less
//! enthusiastic. This example reproduces that analysis for several
//! groups and also prints the knowledge-graph path between the two most
//! influential members (the "high-order user–user connectivity" the
//! paper appeals to).
//!
//! ```text
//! cargo run --release --example explain_recommendation
//! ```

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_simi, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_kg::paths::shortest_path;

fn main() {
    let ds = movielens_simi(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 3);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 10, ..Default::default() });
    model.fit(&split);

    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    println!("attention decompositions for three groups:\n");
    for case in cases.iter().take(3) {
        let item = case.test_items[0];
        let explanation = model.explain(case.group, item);
        assert!(explanation.is_well_formed(), "malformed explanation");
        print!("{explanation}");

        // the two most influential members, and how they connect in the
        // collaborative KG
        let ranking = explanation.ranking();
        if ranking.len() >= 2 {
            let (a, b) = (explanation.members[ranking[0]], explanation.members[ranking[1]]);
            let ckg = model.collaborative_kg();
            match shortest_path(ckg.graph(), ckg.user_entity(a), ckg.user_entity(b)) {
                Some(path) => {
                    print!("  KG connectivity u_{a} -> u_{b}: {} hops (", path.len());
                    for hop in &path {
                        print!(" ->e_{}", hop.entity.0);
                    }
                    println!(" )");
                }
                None => println!("  u_{a} and u_{b} are not connected in the collaborative KG"),
            }
        }
        println!();
    }
}
