#!/usr/bin/env sh
# Offline multi-stage CI gate for the KGAG workspace.
#
# The workspace has zero external dependencies (see DESIGN.md §8), so
# every cargo invocation runs with --offline: if anyone reintroduces a
# crates.io dependency, the gate fails on the first stage instead of
# only on a network-less machine.
#
# The gate is a stage *manifest* plus a generic runner: each stage is a
# name in $STAGES with a description and a shell function, the runner
# prints generated "N/M" banners, times every stage, and writes the
# machine-readable run summary to results/ci_summary.json (via the
# kgag-bench ci_summary binary) whether the run passes or fails.
#
# Stages (./ci.sh --list prints this table):
#   fmt        — cargo fmt --check
#   build      — release build with RUSTFLAGS="-D warnings"
#   test       — full suite at KGAG_THREADS=1 and KGAG_THREADS=4; the
#                determinism suite additionally compares both thread
#                counts bit-for-bit inside one process (DESIGN.md §9)
#   cache      — the batched-inference oracle suite again, at both
#                thread counts, with the *environment* knobs forced to
#                their non-default paths (KGAG_RF_CACHE=0,
#                KGAG_EVAL_BATCH=7) and one leg pinning
#                KGAG_SCORE_DTYPE=f64 explicitly: batched scores must
#                stay bit-identical to the per-case path however the
#                engine is configured (DESIGN.md §11)
#   serve      — the serve_check gate, at both thread counts: a fixed
#                request slice fanned out through 4 concurrent clients
#                of the in-process server and over loopback TCP must
#                score bit-identically to the offline BatchScorer, the
#                full evaluation protocol must reproduce
#                evaluate_batched exactly with the server in the scorer
#                seat, and graceful shutdown must answer every accepted
#                request (DESIGN.md §12)
#   shard      — sharded-serving gate (DESIGN.md §15): the shard_check
#                binary at both thread counts. It spawns 2 real shard
#                processes, proves router-fused scatter-gather scores
#                bit-identical to the single-node BatchScorer on the
#                exact tier (and to the single-node f32 tier on the
#                fused tier), round-trips the TCP front door, then
#                SIGKILLs a shard mid-stream: affected requests must
#                fail with typed errors while untouched ones stay
#                bit-identical — no panic, no hang
#   registry   — multi-tenant registry gate (DESIGN.md §16): the
#                registry_check binary at both thread counts. Against a
#                real serve_tcp_registry server it LOADs two
#                checkpoints by path, proves a shadow candidate on live
#                traffic (every mirrored request bit-identical to the
#                candidate's offline scores), promotes with zero
#                downtime, storms wire ROLLBACKs under 4 concurrent
#                clients (every response must match exactly one
#                checkpoint's bits — never a torn mix), and pins the
#                burst-5 no-refill governor to exactly 5 admissions +
#                3 Quota rejections per tenant with obs counters
#                matching
#   backend    — propagation-backend parity gate (DESIGN.md §17): the
#                backend_oracle suite at KGAG_THREADS=1 and 4, one leg
#                with KGAG_SCORE_DTYPE pinned to each tier. All four
#                backends must be self-identical across the cache ×
#                chunk × thread matrix, KGNN-LS at ls_weight=0 must
#                reproduce GCN training bit-for-bit, checkpoints must
#                refuse cross-backend restores typed, and fused-tier
#                claims must match the kernels (interaction falls back
#                to the exact tier)
#   lifecycle  — dynamic-group gate (DESIGN.md §13): the
#                mutate-equals-rebuild oracle suite re-run with the
#                receptive-field cache disabled (the cached paths run
#                in the test stage; both must agree bit-for-bit), then
#                the lifecycle_check binary at both thread counts — 4
#                concurrent TCP clients creating/joining/leaving
#                disjoint groups while scoring, every response
#                bit-identical to the roster-level reference and every
#                malformed mutation a typed rejection
#   telemetry  — smoke training with the JSONL telemetry sink enabled:
#                model outputs must be bit-identical with telemetry on
#                vs off, and every emitted line must pass the testkit
#                JSON parser plus the per-kind schema checks (§10)
#   golden     — fixed-seed smoke training compared *bit-identically*
#                against results/golden_smoke.json; any numeric drift
#                fails. After an intentional numerics change:
#                  ./ci.sh --golden-baseline
#   accuracy   — f32-tier accuracy contract (DESIGN.md §14): the
#                accuracy_check gate with KGAG_SCORE_DTYPE=f32, at
#                KGAG_THREADS=1 and 4 (both tiers are thread-invariant,
#                so the two legs must print identical numbers). Ranking
#                agreement with the exact engine must satisfy the
#                committed results/accuracy_contract.json. After an
#                intentional kernel change:
#                  ./ci.sh --accuracy-baseline
#   bench      — only with --bench (or --stage bench): regenerate the
#                micro-benchmark JSON artifacts into a scratch dir,
#                move them into crates/bench/results atomically (an
#                interrupted run never leaves a partial artifact set),
#                and compare medians against the committed
#                results/bench_baseline.json; fails on regressions
#                beyond KGAG_BENCH_TOLERANCE (default 25%) and on any
#                baseline suite with no artifact at all. Regenerate the
#                baseline after intentional perf changes with:
#                  ./ci.sh --bench-baseline
#
# Usage:
#   ./ci.sh                      # every stage except bench
#   ./ci.sh --list               # print the stage table and exit
#   ./ci.sh --stage golden       # run exactly one stage
#   ./ci.sh --stage fmt,test     # run a comma-separated subset
#   ./ci.sh --bench              # …default stages plus the bench gate
#   ./ci.sh --bench-baseline     # …instead rewrite results/bench_baseline.json
#   ./ci.sh --golden-baseline    # …instead rewrite results/golden_smoke.json
#   ./ci.sh --accuracy-baseline  # …instead rewrite results/accuracy_contract.json
set -eu

cd "$(dirname "$0")"

# ----------------------------------------------------------------- manifest

STAGES="fmt build test cache serve shard registry backend lifecycle telemetry golden accuracy bench"
# bench is opt-in: excluded from a default run, included by --bench /
# --bench-baseline or an explicit --stage selection
DEFAULT_STAGES="fmt build test cache serve shard registry backend lifecycle telemetry golden accuracy"

stage_desc() {
    case "$1" in
    fmt) echo "cargo fmt --check" ;;
    build) echo "release build, deny warnings" ;;
    test) echo "full test suite at KGAG_THREADS=1 and 4" ;;
    cache) echo "batched-inference cache equivalence (env knobs forced)" ;;
    serve) echo "serving gate: concurrent bit-identity + drain" ;;
    shard) echo "sharded gate: scatter-gather bit-identity + shard kill" ;;
    registry) echo "registry gate: shadow-proven swap + quota determinism" ;;
    backend) echo "backend gate: 4-backend parity oracle at both tiers" ;;
    lifecycle) echo "lifecycle gate: mutate-equals-rebuild + TCP mutations" ;;
    telemetry) echo "telemetry gate: passivity + JSONL schema" ;;
    golden) echo "golden-file gate: bit-identical smoke metrics" ;;
    accuracy) echo "f32-tier accuracy contract at KGAG_THREADS=1 and 4" ;;
    bench) echo "bench regression gate (opt-in: --bench)" ;;
    esac
}

run_fmt() {
    cargo fmt --check
}

run_build() {
    RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
}

run_test() {
    KGAG_THREADS=1 cargo test -q --offline --workspace
    KGAG_THREADS=4 cargo test -q --offline --workspace
}

run_cache() {
    # one leg pins the default tier explicitly: KGAG_SCORE_DTYPE=f64
    # must be a spelled-out no-op, not an accidental third code path
    KGAG_THREADS=1 KGAG_RF_CACHE=0 KGAG_EVAL_BATCH=7 KGAG_SCORE_DTYPE=f64 \
        cargo test -q --offline -p kgag --test batched_oracle
    KGAG_THREADS=4 KGAG_RF_CACHE=0 KGAG_EVAL_BATCH=7 \
        cargo test -q --offline -p kgag --test batched_oracle
}

run_serve() {
    KGAG_THREADS=1 KGAG_SCORE_DTYPE=f64 \
        cargo run -q --release --offline -p kgag-bench --bin serve_check
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin serve_check
}

run_shard() {
    KGAG_THREADS=1 KGAG_SCORE_DTYPE=f64 \
        cargo run -q --release --offline -p kgag-bench --bin shard_check
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin shard_check
}

run_registry() {
    KGAG_THREADS=1 KGAG_SCORE_DTYPE=f64 \
        cargo run -q --release --offline -p kgag-bench --bin registry_check
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin registry_check
}

run_backend() {
    # the suite pins ScoreTier::Exact on every oracle scorer, so the
    # KGAG_SCORE_DTYPE pin per leg proves the env knob cannot leak into
    # backend parity — and the f32 leg exercises resolve_for fallback
    KGAG_THREADS=1 KGAG_SCORE_DTYPE=f64 \
        cargo test -q --release --offline -p kgag --test backend_oracle
    KGAG_THREADS=4 KGAG_SCORE_DTYPE=f32 \
        cargo test -q --release --offline -p kgag --test backend_oracle
}

run_lifecycle() {
    KGAG_THREADS=1 KGAG_RF_CACHE=0 KGAG_SCORE_DTYPE=f64 \
        cargo test -q --release --offline -p kgag --test lifecycle_oracle
    KGAG_THREADS=4 KGAG_RF_CACHE=0 \
        cargo test -q --release --offline -p kgag --test lifecycle_oracle
    KGAG_THREADS=1 cargo run -q --release --offline -p kgag-bench --bin lifecycle_check
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin lifecycle_check
}

run_telemetry() {
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin telemetry_check
}

run_golden() {
    if [ "$GOLDEN_MODE" = "write" ]; then
        KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin golden_check -- \
            --write-baseline
    else
        KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin golden_check
    fi
}

run_accuracy() {
    if [ "$ACCURACY_MODE" = "write" ]; then
        KGAG_THREADS=4 KGAG_SCORE_DTYPE=f32 \
            cargo run -q --release --offline -p kgag-bench --bin accuracy_check -- \
            --write-baseline
    else
        KGAG_THREADS=1 KGAG_SCORE_DTYPE=f32 \
            cargo run -q --release --offline -p kgag-bench --bin accuracy_check
        KGAG_THREADS=4 KGAG_SCORE_DTYPE=f32 \
            cargo run -q --release --offline -p kgag-bench --bin accuracy_check
    fi
}

# Bench settings shared by the gate and baseline generation — the 25%
# tolerance only means something when both sides use identical
# iteration counts.
BENCH_ENV="KGAG_BENCH_ITERS=5 KGAG_BENCH_WARMUP=1 KGAG_THREADS=4"

run_bench() {
    # regenerate into a scratch dir, then move finished artifacts into
    # place one by one: the committed artifact set is either the old
    # run or the new run, never a partially overwritten mix — and
    # bench_check hard-fails if a whole suite ends up missing anyway
    scratch="crates/bench/results/.regen.$$"
    rm -rf "$scratch"
    mkdir -p "$scratch"
    # KGAG_BENCH_DIR is resolved from the bench processes' cwd
    # (crates/bench), hence the shorter relative path
    env $BENCH_ENV KGAG_BENCH_DIR="results/.regen.$$" cargo bench --offline -p kgag-bench
    for f in "$scratch"/bench_*.json; do
        [ -e "$f" ] || continue
        mv -f "$f" "crates/bench/results/$(basename "$f")"
    done
    rmdir "$scratch"
    if [ "$BENCH_MODE" = "write" ]; then
        cargo run -q --release --offline -p kgag-bench --bin bench_check -- --write-baseline
    else
        cargo run -q --release --offline -p kgag-bench --bin bench_check
    fi
}

# ------------------------------------------------------------------- runner

GOLDEN_MODE=check
ACCURACY_MODE=check
BENCH_MODE=check
SELECTED="$DEFAULT_STAGES"

usage() {
    echo "usage: ./ci.sh [--list] [--stage name[,name...]] [--bench |" >&2
    echo "               --bench-baseline | --golden-baseline | --accuracy-baseline]" >&2
}

list_stages() {
    echo "available stages:"
    for s in $STAGES; do
        printf '  %-10s %s\n' "$s" "$(stage_desc "$s")"
    done
}

known_stage() {
    # distinct loop variable: sh functions share the caller's scope, and
    # the validation loop below iterates with `s` too
    for ks in $STAGES; do
        [ "$ks" = "$1" ] && return 0
    done
    return 1
}

while [ $# -gt 0 ]; do
    case "$1" in
    --list)
        list_stages
        exit 0
        ;;
    --stage)
        [ $# -ge 2 ] || {
            echo "--stage needs a comma-separated stage list" >&2
            usage
            exit 2
        }
        SELECTED=$(echo "$2" | tr ',' ' ')
        for s in $SELECTED; do
            known_stage "$s" || {
                echo "unknown stage: $s" >&2
                list_stages >&2
                exit 2
            }
        done
        [ -n "$SELECTED" ] || {
            echo "--stage selected nothing" >&2
            exit 2
        }
        shift
        ;;
    --bench) SELECTED="$SELECTED bench" ;;
    --bench-baseline)
        BENCH_MODE=write
        SELECTED="$SELECTED bench"
        ;;
    --golden-baseline) GOLDEN_MODE=write ;;
    --accuracy-baseline) ACCURACY_MODE=write ;;
    *)
        echo "unknown argument: $1" >&2
        usage
        exit 2
        ;;
    esac
    shift
done

# per-stage timing log consumed by the ci_summary binary; the EXIT trap
# turns it into results/ci_summary.json even when a stage fails
STAGE_LOG=$(mktemp)
write_summary() {
    if [ -s "$STAGE_LOG" ]; then
        cargo run -q --release --offline -p kgag-bench --bin ci_summary -- \
            --stages "$STAGE_LOG" ||
            echo "warning: could not write results/ci_summary.json" >&2
    fi
    rm -f "$STAGE_LOG"
}
trap write_summary EXIT

TOTAL=0
for s in $SELECTED; do
    TOTAL=$((TOTAL + 1))
done

N=0
for s in $SELECTED; do
    N=$((N + 1))
    echo "==> stage $N/$TOTAL: $s — $(stage_desc "$s")"
    T0=$(date +%s)
    if "run_$s"; then
        STATUS=pass
    else
        STATUS=fail
    fi
    echo "$s $STATUS $(($(date +%s) - T0))" >>"$STAGE_LOG"
    if [ "$STATUS" = "fail" ]; then
        echo "==> CI gate FAILED at stage $N/$TOTAL: $s" >&2
        exit 1
    fi
done

echo "==> CI gate passed ($TOTAL stage(s))"
