#!/usr/bin/env sh
# Offline multi-stage CI gate for the KGAG workspace.
#
# The workspace has zero external dependencies (see DESIGN.md §8), so
# every cargo invocation runs with --offline: if anyone reintroduces a
# crates.io dependency, the gate fails on the first stage instead of
# only on a network-less machine.
#
# Stages (each fails fast):
#   1. fmt        — cargo fmt --check
#   2. build      — release build with RUSTFLAGS="-D warnings"
#   3. test x2    — full suite at KGAG_THREADS=1 and KGAG_THREADS=4;
#                   the determinism suite additionally compares both
#                   thread counts bit-for-bit inside one process
#                   (DESIGN.md §9)
#   4. cache eq   — the batched-inference oracle suite again, at both
#                   thread counts, with the *environment* knobs forced
#                   to their non-default paths (KGAG_RF_CACHE=0,
#                   KGAG_EVAL_BATCH=7): batched scores must stay
#                   bit-identical to the per-case path however the
#                   engine is configured (DESIGN.md §11)
#   5. serving    — the serve_check gate, at both thread counts: a
#                   fixed request slice fanned out through 4 concurrent
#                   clients of the in-process server and over loopback
#                   TCP must score bit-identically to the offline
#                   BatchScorer, the full evaluation protocol must
#                   reproduce evaluate_batched exactly with the server
#                   in the scorer seat, and graceful shutdown must
#                   answer every accepted request (DESIGN.md §12)
#   6. lifecycle  — dynamic-group gate (DESIGN.md §13): the
#                   mutate-equals-rebuild oracle suite re-run with the
#                   receptive-field cache disabled (the cached paths run
#                   in stage 3; both must agree bit-for-bit), then the
#                   lifecycle_check binary at both thread counts — 4
#                   concurrent TCP clients creating/joining/leaving
#                   disjoint groups while scoring, every response
#                   bit-identical to the roster-level reference and
#                   every malformed mutation a typed rejection
#   7. telemetry  — smoke training with the JSONL telemetry sink
#                   enabled: model outputs must be bit-identical with
#                   telemetry on vs off, and every emitted line must
#                   pass the testkit JSON parser plus the per-kind
#                   schema checks (DESIGN.md §10)
#   8. golden     — fixed-seed smoke training compared *bit-identically*
#                   against results/golden_smoke.json; any numeric
#                   drift fails. After an intentional numerics change:
#                     ./ci.sh --golden-baseline
#   9. bench gate — only with --bench: regenerate the micro-benchmark
#                   JSON artifacts and compare medians against the
#                   committed results/bench_baseline.json; fails on
#                   regressions beyond KGAG_BENCH_TOLERANCE (default
#                   25%). Regenerate the baseline after intentional
#                   perf changes with:
#                     ./ci.sh --bench-baseline
#
# Usage:
#   ./ci.sh                    # stages 1-8
#   ./ci.sh --bench            # …plus the bench regression gate
#   ./ci.sh --bench-baseline   # …instead rewrite results/bench_baseline.json
#   ./ci.sh --golden-baseline  # stages 1-7, then rewrite results/golden_smoke.json
set -eu

cd "$(dirname "$0")"

# Bench settings shared by the gate and baseline generation — the 25%
# tolerance only means something when both sides use identical
# iteration counts.
BENCH_ENV="KGAG_BENCH_ITERS=5 KGAG_BENCH_WARMUP=1 KGAG_THREADS=4"

echo "==> stage 1/9: cargo fmt --check"
cargo fmt --check

echo "==> stage 2/9: cargo build --release --offline (deny warnings)"
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace

echo "==> stage 3/9: cargo test --offline (KGAG_THREADS=1)"
KGAG_THREADS=1 cargo test -q --offline --workspace

echo "==> stage 3/9: cargo test --offline (KGAG_THREADS=4)"
KGAG_THREADS=4 cargo test -q --offline --workspace

echo "==> stage 4/9: batched-inference cache equivalence (KGAG_THREADS=1)"
KGAG_THREADS=1 KGAG_RF_CACHE=0 KGAG_EVAL_BATCH=7 \
    cargo test -q --offline -p kgag --test batched_oracle

echo "==> stage 4/9: batched-inference cache equivalence (KGAG_THREADS=4)"
KGAG_THREADS=4 KGAG_RF_CACHE=0 KGAG_EVAL_BATCH=7 \
    cargo test -q --offline -p kgag --test batched_oracle

echo "==> stage 5/9: serving gate (concurrent bit-identity + drain, KGAG_THREADS=1)"
KGAG_THREADS=1 cargo run -q --release --offline -p kgag-bench --bin serve_check

echo "==> stage 5/9: serving gate (concurrent bit-identity + drain, KGAG_THREADS=4)"
KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin serve_check

echo "==> stage 6/9: lifecycle gate (mutate-equals-rebuild, cache off, KGAG_THREADS=1)"
KGAG_THREADS=1 KGAG_RF_CACHE=0 cargo test -q --release --offline -p kgag --test lifecycle_oracle

echo "==> stage 6/9: lifecycle gate (mutate-equals-rebuild, cache off, KGAG_THREADS=4)"
KGAG_THREADS=4 KGAG_RF_CACHE=0 cargo test -q --release --offline -p kgag --test lifecycle_oracle

echo "==> stage 6/9: lifecycle gate (4-client concurrent mutate/score over TCP, KGAG_THREADS=1)"
KGAG_THREADS=1 cargo run -q --release --offline -p kgag-bench --bin lifecycle_check

echo "==> stage 6/9: lifecycle gate (4-client concurrent mutate/score over TCP, KGAG_THREADS=4)"
KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin lifecycle_check

echo "==> stage 7/9: telemetry gate (passivity + JSONL schema)"
KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin telemetry_check

if [ "${1:-}" = "--golden-baseline" ]; then
    echo "==> stage 8/9: rewriting golden baseline"
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin golden_check -- \
        --write-baseline
else
    echo "==> stage 8/9: golden-file gate (bit-identical smoke metrics)"
    KGAG_THREADS=4 cargo run -q --release --offline -p kgag-bench --bin golden_check
fi

run_benches() {
    rm -f crates/bench/results/bench_*.json
    env $BENCH_ENV cargo bench --offline -p kgag-bench
}

case "${1:-}" in
--bench)
    echo "==> stage 9/9: bench regression gate"
    run_benches
    cargo run -q --release --offline -p kgag-bench --bin bench_check
    ;;
--bench-baseline)
    echo "==> stage 9/9: rewriting bench baseline"
    run_benches
    cargo run -q --release --offline -p kgag-bench --bin bench_check -- --write-baseline
    ;;
"" | --golden-baseline) ;;
*)
    echo "usage: ./ci.sh [--bench | --bench-baseline | --golden-baseline]" >&2
    exit 2
    ;;
esac

echo "==> CI gate passed"
