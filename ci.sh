#!/usr/bin/env sh
# Offline tier-1 gate for the KGAG workspace.
#
# The workspace has zero external dependencies (see DESIGN.md §8), so the
# whole gate runs with --offline: if anyone reintroduces a crates.io
# dependency, this script fails on the first cargo invocation instead of
# only on a network-less machine.
#
# Usage:
#   ./ci.sh          # build (release) + full test suite
#   ./ci.sh --bench  # additionally smoke-run the micro-benchmarks
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --offline"
cargo test -q --offline --workspace

if [ "${1:-}" = "--bench" ]; then
    # one measured iteration per benchmark: checks the harness and the
    # bench code paths, not the timings
    echo "==> bench smoke (KGAG_BENCH_ITERS=1)"
    KGAG_BENCH_ITERS=1 KGAG_BENCH_WARMUP=0 cargo bench --offline -p kgag-bench
fi

echo "==> tier-1 gate passed"
