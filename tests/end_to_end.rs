//! End-to-end integration: dataset → split → KGAG training → evaluation
//! → explanation, across crate boundaries.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::EvalConfig;

fn tiny_cfg(epochs: usize) -> KgagConfig {
    KgagConfig { epochs, ..Default::default() }
}

#[test]
fn training_beats_untrained_on_rand() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 42);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty());
    let ecfg = EvalConfig::default();

    let mut model = Kgag::new(&ds, &split, tiny_cfg(12));
    let before = model.evaluate(&cases, &ecfg);
    let report = model.fit(&split);
    let after = model.evaluate(&cases, &ecfg);

    assert_eq!(report.epochs.len(), 12);
    assert!(
        report.epochs.last().unwrap().group < report.epochs.first().unwrap().group,
        "group loss should decrease: {report:?}"
    );
    assert!(
        after.hit >= before.hit,
        "training should not hurt hit@5: {:.4} -> {:.4}",
        before.hit,
        after.hit
    );
    assert!(after.hit > 0.0, "trained model should hit at least once");
}

/// Workspace smoke test: the whole offline stack — synthetic dataset,
/// split, KGAG training, ranking evaluation, JSON rendering — works
/// end to end with no external dependency anywhere.
#[test]
fn workspace_smoke_train_and_rank() {
    use kgag_testkit::json::ToJson;

    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty(), "tiny world must produce test cases");

    let mut model = Kgag::new(&ds, &split, tiny_cfg(6));
    let report = model.fit(&split);
    assert_eq!(report.epochs.len(), 6);
    let first = report.epochs.first().unwrap();
    let last = report.epochs.last().unwrap();
    assert!(
        last.group < first.group,
        "group loss should decrease: {:.4} -> {:.4}",
        first.group,
        last.group
    );

    let summary = model.evaluate(&cases, &EvalConfig::default());
    for (name, v) in [
        ("hit", summary.hit),
        ("recall", summary.recall),
        ("precision", summary.precision),
        ("ndcg", summary.ndcg),
        ("mrr", summary.mrr),
    ] {
        assert!((0.0..=1.0).contains(&v), "{name} = {v} outside [0, 1]");
    }

    // the report and summary serialise through the in-workspace writer
    let text = summary.to_json().to_string_pretty();
    assert!(text.contains("\"hit\""), "{text}");
    let text = report.to_json().to_string_pretty();
    assert!(text.contains("\"epochs\""), "{text}");
}

#[test]
fn every_ablation_trains_and_evaluates() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 5);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    let ecfg = EvalConfig::default();
    let base = tiny_cfg(3);
    for (name, cfg) in [
        ("full", base.clone()),
        ("-KG", base.clone().ablate_kg()),
        ("-SP", base.clone().ablate_sp()),
        ("-PI", base.clone().ablate_pi()),
        ("BPR", base.clone().with_bpr()),
        ("GraphSage", KgagConfig { backend: kgag::Aggregator::GraphSage, ..base.clone() }),
        ("H1", KgagConfig { layers: 1, ..base.clone() }),
        ("no-residual", KgagConfig { residual: false, ..base }),
    ] {
        let mut model = Kgag::new(&ds, &split, cfg);
        let report = model.fit(&split);
        assert!(
            report.epochs.iter().all(|e| e.group.is_finite() && e.user.is_finite()),
            "{name}: non-finite loss"
        );
        let s = model.evaluate(&cases, &ecfg);
        assert!((0.0..=1.0).contains(&s.hit), "{name}: hit out of range");
        assert!(s.recall <= s.hit + 1e-9, "{name}: rec@5 can never exceed hit@5");
    }
}

#[test]
fn explanations_are_valid_distributions() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 6);
    let mut model = Kgag::new(&ds, &split, tiny_cfg(4));
    model.fit(&split);
    for g in 0..ds.num_groups().min(10) {
        for &v in ds.group_pos.items_of(g).iter().take(2) {
            let e = model.explain(g, v);
            assert!(e.is_well_formed(), "group {g} item {v}: {e:?}");
            assert_eq!(e.members.len(), ds.group_size);
            let sum: f32 = e.alpha.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3);
        }
    }
}

#[test]
fn scoring_is_deterministic() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 7);
    let mut model = Kgag::new(&ds, &split, tiny_cfg(2));
    model.fit(&split);
    let items: Vec<u32> = (0..ds.num_items).collect();
    let a = model.score_group_items(0, &items);
    let b = model.score_group_items(0, &items);
    assert_eq!(a, b, "same model + same inputs must give identical scores");
}

#[test]
fn group_scores_depend_on_the_group() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 8);
    let mut model = Kgag::new(&ds, &split, tiny_cfg(4));
    model.fit(&split);
    let items: Vec<u32> = (0..20).collect();
    let a = model.score_group_items(0, &items);
    let b = model.score_group_items(1, &items);
    assert_ne!(a, b, "different groups should get different scores");
}

#[test]
fn user_scores_are_probabilities_and_user_specific() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 9);
    let mut model = Kgag::new(&ds, &split, tiny_cfg(3));
    model.fit(&split);
    let items: Vec<u32> = (0..30).collect();
    let a = model.score_user_items(0, &items);
    let b = model.score_user_items(1, &items);
    assert!(a.iter().chain(&b).all(|s| (0.0..=1.0).contains(s)));
    assert_ne!(a, b);
}

#[test]
fn collaborative_kg_excludes_heldout_interact_edges() {
    // leakage check at the graph level: for a held-out (g, v), no member
    // of g may have an Interact edge to v in the model's collaborative KG
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 10);
    let model = Kgag::new(&ds, &split, tiny_cfg(1));
    let ckg = model.collaborative_kg();
    for &(g, v) in split.group.test.iter().take(50) {
        let item_ent = ckg.item_entity(v);
        for &m in ds.members(g) {
            let user_ent = ckg.user_entity(m);
            let linked = ckg.graph().neighbors(user_ent).any(|(n, _)| n == item_ent);
            assert!(!linked, "leak: user {m} linked to held-out item {v} of group {g}");
        }
    }
}

#[test]
fn checkpoint_round_trip_preserves_scores() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 13);
    let mut model = Kgag::new(&ds, &split, tiny_cfg(3));
    model.fit(&split);
    let items: Vec<u32> = (0..ds.num_items).collect();
    let before = model.score_group_items(0, &items);
    let blob = model.save_checkpoint();

    // a fresh model scores differently until the checkpoint is loaded
    let mut fresh = Kgag::new(&ds, &split, tiny_cfg(3));
    assert_ne!(fresh.score_group_items(0, &items), before);
    let restored = fresh.load_checkpoint(&blob).expect("load");
    assert!(restored > 0);
    assert_eq!(fresh.score_group_items(0, &items), before);
}
