//! Integration of the dataset generators with splits, samplers and the
//! collaborative KG.

use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::{split_dataset, NegativeSampler};
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_kg::paths::distance;
use kgag_tensor::rng::SplitMix64;

#[test]
fn trio_reproduces_table1_orderings() {
    let (_, rand, simi) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let yl = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let (r, s, y) = (rand.stats(), simi.stats(), yl.stats());
    // group sizes 8 / 5 / 3
    assert_eq!(r.group_size, 8);
    assert_eq!(s.group_size, 5);
    assert_eq!(y.group_size, 3);
    // interactions per group: Simi > Rand > Yelp ≈ 1
    assert!(s.inter_per_group > r.inter_per_group);
    assert!(r.inter_per_group > y.inter_per_group);
    assert!(y.inter_per_group < 2.0);
}

#[test]
fn split_partitions_group_positives_exactly() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 23);
    let total = split.group.train.len() + split.group.val.len() + split.group.test.len();
    assert_eq!(total, ds.group_pos.len());
    // every pair is a real positive
    for &(g, v) in split.group.train.iter().chain(&split.group.val).chain(&split.group.test) {
        assert!(ds.group_pos.contains(g, v));
    }
}

#[test]
fn leakage_filter_removes_member_edges_to_heldout_items() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 29);
    for &(g, v) in split.group.val.iter().chain(&split.group.test) {
        for &m in ds.members(g) {
            assert!(
                !split.user_train.contains(m, v),
                "user {m} keeps an interaction with held-out item {v} of group {g}"
            );
        }
    }
    // but the filter is minimal: it only removes blocked pairs
    let removed = ds.user_pos.len() - split.user_train.len();
    let max_removable: usize =
        split.group.val.iter().chain(&split.group.test).map(|&(g, _)| ds.members(g).len()).sum();
    assert!(removed <= max_removable, "filter removed more than it could have");
}

#[test]
fn negative_sampler_never_returns_positives() {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let sampler = NegativeSampler::from_interactions(&ds.group_pos);
    let mut rng = SplitMix64::new(31);
    for g in 0..ds.num_groups().min(20) {
        for _ in 0..50 {
            let v = sampler.sample(g, &mut rng);
            assert!(!ds.group_pos.contains(g, v));
        }
    }
}

#[test]
fn group_members_are_connected_in_collaborative_kg() {
    // the premise of the whole model: co-preferring users are close in
    // the collaborative KG. Members of a group share at least one chosen
    // item, so they must be within a few hops of each other.
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let ckg = ds.collaborative_kg();
    let mut within_4 = 0usize;
    let mut total = 0usize;
    for g in 0..ds.num_groups().min(15) {
        let m = ds.members(g);
        let a = ckg.user_entity(m[0]);
        let b = ckg.user_entity(m[1]);
        total += 1;
        if distance(ckg.graph(), a, b).is_some_and(|d| d <= 4) {
            within_4 += 1;
        }
    }
    assert!(within_4 * 10 >= total * 8, "only {within_4}/{total} member pairs within 4 hops");
}

#[test]
fn yelp_groups_have_mostly_single_positives() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let singles = (0..ds.num_groups()).filter(|&g| ds.group_pos.items_of(g).len() == 1).count();
    assert!(
        singles * 10 >= ds.num_groups() as usize * 7,
        "only {singles}/{} Yelp groups have a single positive",
        ds.num_groups()
    );
}

#[test]
fn generation_is_reproducible_across_calls() {
    let cfg = MovieLensConfig::at_scale(Scale::Tiny);
    let (_, a, _) = movielens_pair(&cfg);
    let (_, b, _) = movielens_pair(&cfg);
    assert_eq!(a.num_groups(), b.num_groups());
    assert_eq!(a.group_pos.pairs(), b.group_pos.pairs());
    assert_eq!(a.user_pos.pairs(), b.user_pos.pairs());
    assert_eq!(a.kg.len(), b.kg.len());
}
