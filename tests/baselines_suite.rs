//! Cross-crate integration of the baseline models with the shared
//! evaluation protocol.

use kgag::harness::{eval_cases, EvalBucket};
use kgag_baselines::{
    AggregatedGroupScorer, BaselineConfig, Kgcn, KgcnConfig, MatrixFactorization, MfConfig, Mosan,
    MosanConfig, Popularity, ScoreAggregator,
};
use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::{split_dataset, DatasetSplit};
use kgag_data::GroupDataset;
use kgag_eval::{evaluate_group_ranking, EvalConfig, GroupEvalCase};

fn fixture() -> (GroupDataset, DatasetSplit, Vec<GroupEvalCase>) {
    let (_, ds, _) = movielens_pair(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 17);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    (ds, split, cases)
}

#[test]
fn all_baselines_beat_random_guessing_with_enough_epochs() {
    let (ds, split, cases) = fixture();
    let ecfg = EvalConfig::default();
    // ~5 of 100+ candidates hit by chance; a weakly trained model should
    // beat a clearly-below-chance floor
    let chance = 0.02;

    let mut mf = MatrixFactorization::new(
        &ds,
        MfConfig { epochs: 25, learning_rate: 0.03, ..Default::default() },
    );
    mf.fit(&split);
    let s = evaluate_group_ranking(
        &AggregatedGroupScorer::new(&mf, &ds.groups, ScoreAggregator::Average),
        ds.num_items,
        &cases,
        &ecfg,
    );
    assert!(s.hit > chance, "CF+AVG hit {:.4}", s.hit);

    let mut kgcn = Kgcn::new(
        &ds,
        KgcnConfig {
            base: BaselineConfig { epochs: 15, learning_rate: 0.03, ..Default::default() },
            ..Default::default()
        },
    );
    kgcn.fit(&split);
    let s = evaluate_group_ranking(
        &AggregatedGroupScorer::new(&kgcn, &ds.groups, ScoreAggregator::Average),
        ds.num_items,
        &cases,
        &ecfg,
    );
    assert!(s.hit > chance, "KGCN+AVG hit {:.4}", s.hit);

    let mut mosan = Mosan::new(
        &ds,
        &split,
        MosanConfig {
            base: BaselineConfig { epochs: 15, learning_rate: 0.03, ..Default::default() },
            transe: None,
        },
    );
    mosan.fit(&split);
    let s = evaluate_group_ranking(&mosan, ds.num_items, &cases, &ecfg);
    assert!(s.hit > chance, "MoSAN hit {:.4}", s.hit);
}

#[test]
fn aggregators_order_min_avg_max_pointwise() {
    let (ds, split, _) = fixture();
    let mut mf = MatrixFactorization::new(&ds, MfConfig { epochs: 3, ..Default::default() });
    mf.fit(&split);
    let items: Vec<u32> = (0..ds.num_items).step_by(13).collect();
    let lm = AggregatedGroupScorer::new(&mf, &ds.groups, ScoreAggregator::LeastMisery);
    let avg = AggregatedGroupScorer::new(&mf, &ds.groups, ScoreAggregator::Average);
    let mp = AggregatedGroupScorer::new(&mf, &ds.groups, ScoreAggregator::MaxPleasure);
    use kgag_eval::GroupScorer;
    for g in 0..ds.num_groups().min(5) {
        let (lo, mid, hi) = (lm.score(g, &items), avg.score(g, &items), mp.score(g, &items));
        for i in 0..items.len() {
            assert!(
                lo[i] <= mid[i] + 1e-6 && mid[i] <= hi[i] + 1e-6,
                "LM ≤ AVG ≤ MP violated at group {g} item {i}"
            );
        }
    }
}

#[test]
fn popularity_is_group_invariant() {
    let (ds, split, _) = fixture();
    let pop = Popularity::fit(&split.user_train);
    use kgag_eval::GroupScorer;
    let items: Vec<u32> = (0..ds.num_items).collect();
    assert_eq!(pop.score(0, &items), pop.score(1, &items));
}

#[test]
fn mosan_transe_pretraining_changes_results() {
    let (ds, split, cases) = fixture();
    let ecfg = EvalConfig::default();
    let base = BaselineConfig { epochs: 5, ..Default::default() };
    let mut with = Mosan::new(
        &ds,
        &split,
        MosanConfig {
            base: base.clone(),
            transe: Some(kgag_kg::transe::TransEConfig {
                dim: base.dim,
                epochs: 5,
                ..Default::default()
            }),
        },
    );
    with.fit(&split);
    let mut without = Mosan::new(&ds, &split, MosanConfig { base, transe: None });
    without.fit(&split);
    let a = evaluate_group_ranking(&with, ds.num_items, &cases, &ecfg);
    let b = evaluate_group_ranking(&without, ds.num_items, &cases, &ecfg);
    // not asserting which is better at tiny scale — only that the
    // knowledge-aware initialization actually flows through
    assert_ne!(a, b);
}

#[test]
fn same_protocol_same_candidates_for_all_models() {
    // two scorers that return identical scores must get identical metrics
    // (the protocol's sampling must not depend on the scorer)
    let (ds, _, cases) = fixture();
    let ecfg = EvalConfig::default();
    let constant_a = |_: u32, items: &[u32]| vec![0.5; items.len()];
    let constant_b = |_: u32, items: &[u32]| vec![0.5; items.len()];
    let a = evaluate_group_ranking(&constant_a, ds.num_items, &cases, &ecfg);
    let b = evaluate_group_ranking(&constant_b, ds.num_items, &cases, &ecfg);
    assert_eq!(a, b);
}
